//! Exporters: trace events and metrics in interchange formats.
//!
//! Three text formats, all built from the same [`TraceEvent`] stream and
//! [`MetricsRegistry`]:
//!
//! - [`events_jsonl`] — one canonical-JSON event per line, the lossless
//!   dump (each line parses back into a [`TraceEvent`]);
//! - [`chrome_trace`] — the Chrome `trace_event` JSON-array format, so a
//!   quantum's pipeline activity opens directly in `chrome://tracing` /
//!   Perfetto with one timeline row per hardware context (`ts` is the
//!   simulated cycle, execution intervals are `X` complete events,
//!   everything else an `i` instant);
//! - [`prometheus`] — the Prometheus text exposition format for the
//!   registry's counters and histograms (`_bucket`/`_sum`/`_count`
//!   triplets with cumulative `le` buckets).

use crate::obs::attr::{CommitCause, FetchCause, IssueCause, SlotStack};
use crate::obs::metrics::MetricsRegistry;
use crate::trace::{MissLevel, TraceEvent};
use std::fmt::Write as _;

/// Serialize events as JSON Lines, oldest first.
pub fn events_jsonl<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde::json::to_string(ev));
        out.push('\n');
    }
    out
}

/// The Chrome `trace_event` "pid" all simulator events share.
const CHROME_PID: u32 = 0;
/// Synthetic Chrome "tid" for machine-wide events (policy switches).
const CHROME_MACHINE_ROW: u32 = 99;

fn chrome_event(out: &mut String, ev: &TraceEvent) {
    chrome_event_pid(out, ev, CHROME_PID);
}

/// Render one event onto the track of Chrome process `pid` (one process
/// per core in the multi-core exporter; pid 0 standalone).
fn chrome_event_pid(out: &mut String, ev: &TraceEvent, pid: u32) {
    let row = ev.tid().map(|t| t.0 as u32).unwrap_or(CHROME_MACHINE_ROW);
    let ts = ev.cycle();
    match *ev {
        TraceEvent::Issue {
            cycle,
            seq,
            done_at,
            ..
        } => {
            let dur = done_at.saturating_sub(cycle).max(1);
            let _ = write!(
                out,
                r#"{{"name":"exec","ph":"X","ts":{ts},"dur":{dur},"pid":{pid},"tid":{row},"args":{{"seq":{seq}}}}}"#
            );
        }
        TraceEvent::Fetch {
            seq,
            kind,
            wrong_path,
            ..
        } => {
            let _ = write!(
                out,
                r#"{{"name":"fetch","ph":"i","ts":{ts},"s":"t","pid":{pid},"tid":{row},"args":{{"seq":{seq},"kind":"{kind:?}","wrong_path":{wrong_path}}}}}"#
            );
        }
        TraceEvent::Dispatch { seq, .. }
        | TraceEvent::Complete { seq, .. }
        | TraceEvent::Commit { seq, .. } => {
            let name = match ev {
                TraceEvent::Dispatch { .. } => "dispatch",
                TraceEvent::Complete { .. } => "complete",
                _ => "commit",
            };
            let _ = write!(
                out,
                r#"{{"name":"{name}","ph":"i","ts":{ts},"s":"t","pid":{pid},"tid":{row},"args":{{"seq":{seq}}}}}"#
            );
        }
        TraceEvent::Squash {
            after_seq, victims, ..
        } => {
            let _ = write!(
                out,
                r#"{{"name":"squash","ph":"i","ts":{ts},"s":"t","pid":{pid},"tid":{row},"args":{{"after_seq":{after_seq},"victims":{victims}}}}}"#
            );
        }
        TraceEvent::Flush { victims, .. } => {
            let _ = write!(
                out,
                r#"{{"name":"flush","ph":"i","ts":{ts},"s":"t","pid":{pid},"tid":{row},"args":{{"victims":{victims}}}}}"#
            );
        }
        TraceEvent::CacheMiss {
            addr, level, rot, ..
        } => {
            let name = match level {
                MissLevel::L1I => "miss-l1i",
                MissLevel::L1D => "miss-l1d",
                MissLevel::L2 => "miss-l2",
            };
            let _ = write!(
                out,
                r#"{{"name":"{name}","ph":"i","ts":{ts},"s":"t","pid":{pid},"tid":{row},"args":{{"addr":{addr},"rot":{rot}}}}}"#
            );
        }
        TraceEvent::PolicySwitch { from, to, .. } => {
            let _ = write!(
                out,
                r#"{{"name":"policy_switch","ph":"i","ts":{ts},"s":"g","pid":{pid},"tid":{row},"args":{{"from":{from},"to":{to}}}}}"#
            );
        }
    }
}

/// Render events in the Chrome `trace_event` format (the JSON-object
/// flavor, `{"traceEvents": [...]}`), oldest first.
pub fn chrome_trace<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::from(r#"{"traceEvents":["#);
    let mut first = true;
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        chrome_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

/// One completed cross-core migration, for flow-arrow export: thread
/// `thread` left `from_core` for `to_core` at `cycle` (the quantum
/// boundary the allocation decision took effect).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationArrow {
    pub cycle: u64,
    pub thread: usize,
    pub from_core: usize,
    pub to_core: usize,
}

/// Render a multi-core run as one merged Chrome trace: one process
/// ("track group") per core — `pid` is the core id, named by a
/// `process_name` metadata event — holding that core's pipeline events,
/// plus one flow arrow (`ph:"s"`/`ph:"f"` pair with a shared `id`) per
/// migration, binding the source core's timeline to the destination's at
/// the migration cycle. Each arrow endpoint also gets an `i` instant
/// (`migrate-out`/`migrate-in`) so the hop is visible even in viewers
/// that drop unbound flow events.
pub fn chrome_multicore_trace(
    per_core: &[Vec<TraceEvent>],
    migrations: &[MigrationArrow],
) -> String {
    let mut out = String::from(r#"{"traceEvents":["#);
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for (c, events) in per_core.iter().enumerate() {
        push_sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"process_name","ph":"M","pid":{c},"tid":0,"args":{{"name":"core {c}"}}}}"#
        );
        for ev in events {
            push_sep(&mut out);
            chrome_event_pid(&mut out, ev, c as u32);
        }
    }
    for (i, m) in migrations.iter().enumerate() {
        let MigrationArrow {
            cycle,
            thread,
            from_core,
            to_core,
        } = *m;
        push_sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"migrate-out","ph":"i","ts":{cycle},"s":"p","pid":{from_core},"tid":{CHROME_MACHINE_ROW},"args":{{"thread":{thread},"to_core":{to_core}}}}}"#
        );
        push_sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"migrate-in","ph":"i","ts":{cycle},"s":"p","pid":{to_core},"tid":{CHROME_MACHINE_ROW},"args":{{"thread":{thread},"from_core":{from_core}}}}}"#
        );
        push_sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"migration t{thread}","cat":"migration","ph":"s","id":{i},"ts":{cycle},"pid":{from_core},"tid":{CHROME_MACHINE_ROW}}}"#
        );
        push_sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"migration t{thread}","cat":"migration","ph":"f","bp":"e","id":{i},"ts":{cycle},"pid":{to_core},"tid":{CHROME_MACHINE_ROW}}}"#
        );
    }
    out.push_str("]}");
    out
}

/// Render per-quantum slot stacks as Chrome `trace_event` counter tracks
/// (`ph: "C"`): one stacked-area track per thread and stage, sampled at
/// `ts` (the quantum-end cycle). Opens in `chrome://tracing` / Perfetto
/// alongside [`chrome_trace`]'s event rows, since both share `pid` 0.
pub fn chrome_slot_tracks<'a>(
    samples: impl IntoIterator<Item = (u64, u8, &'a SlotStack)>,
) -> String {
    let mut out = String::from(r#"{"traceEvents":["#);
    let mut first = true;
    for (ts, tid, stack) in samples {
        for (stage, names, counts) in [
            (
                "fetch",
                FetchCause::ALL.iter().map(|c| c.name()).collect::<Vec<_>>(),
                &stack.fetch[..],
            ),
            (
                "issue",
                IssueCause::ALL.iter().map(|c| c.name()).collect::<Vec<_>>(),
                &stack.issue[..],
            ),
            (
                "commit",
                CommitCause::ALL
                    .iter()
                    .map(|c| c.name())
                    .collect::<Vec<_>>(),
                &stack.commit[..],
            ),
        ] {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                r#"{{"name":"{stage} slots t{tid}","ph":"C","ts":{ts},"pid":{CHROME_PID},"tid":{tid},"args":{{"#
            );
            for (i, (name, count)) in names.iter().zip(counts).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, r#""{name}":{count}"#);
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

/// Restrict a metric name to the Prometheus charset `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Format a bucket bound the Prometheus way (no trailing noise for exact
/// integers, `{:?}`-style shortest float otherwise).
fn fmt_le(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:?}")
    }
}

/// Render the registry in the Prometheus text exposition format. All
/// metric names get the `smt_` prefix.
pub fn prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in reg.counters() {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE smt_{n} counter");
        let _ = writeln!(out, "smt_{n} {value}");
    }
    for (name, h) in reg.hists() {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE smt_{n} histogram");
        let mut cumulative = 0u64;
        for (i, c) in h.counts().iter().enumerate() {
            cumulative += c;
            let _ = writeln!(
                out,
                "smt_{n}_bucket{{le=\"{}\"}} {cumulative}",
                fmt_le(h.upper_edge(i))
            );
        }
        let _ = writeln!(out, "smt_{n}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "smt_{n}_sum {:?}", h.sum());
        let _ = writeln!(out, "smt_{n}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::{OpKind, Tid};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Fetch {
                cycle: 1,
                tid: Tid(0),
                seq: 0,
                kind: OpKind::Load,
                wrong_path: false,
            },
            TraceEvent::Issue {
                cycle: 3,
                tid: Tid(0),
                seq: 0,
                done_at: 9,
            },
            TraceEvent::CacheMiss {
                cycle: 3,
                tid: Tid(0),
                addr: 4096,
                level: MissLevel::L1D,
                rot: 0,
            },
            TraceEvent::PolicySwitch {
                cycle: 5,
                from: 0,
                to: 4,
            },
        ]
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let evs = sample_events();
        let text = events_jsonl(&evs);
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| serde::json::from_str(l).expect("line must parse"))
            .collect();
        assert_eq!(parsed, evs);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_entry_per_event() {
        let evs = sample_events();
        let text = chrome_trace(&evs);
        let v: serde::Value = serde::json::from_str(&text).expect("chrome trace JSON");
        let serde::Value::Map(obj) = &v else {
            panic!("top level must be an object");
        };
        let (_, entries) = obj.iter().find(|(k, _)| k == "traceEvents").unwrap();
        let serde::Value::Seq(items) = entries else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(items.len(), evs.len());
    }

    #[test]
    fn chrome_issue_events_have_duration() {
        let text = chrome_trace(&sample_events());
        assert!(text.contains(r#""ph":"X""#));
        assert!(text.contains(r#""dur":6"#), "{text}");
    }

    #[test]
    fn slot_tracks_are_valid_json_counter_events() {
        use crate::obs::attr::SlotStack;
        let mut stack = SlotStack::default();
        stack.fetch[0] = 11;
        stack.issue[2] = 5;
        stack.commit[1] = 3;
        let text = chrome_slot_tracks([(4096u64, 0u8, &stack), (8192, 1, &stack)]);
        let v: serde::Value = serde::json::from_str(&text).expect("slot tracks JSON");
        let serde::Value::Map(obj) = &v else {
            panic!("top level must be an object");
        };
        let (_, entries) = obj.iter().find(|(k, _)| k == "traceEvents").unwrap();
        let serde::Value::Seq(items) = entries else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(items.len(), 6, "3 stage tracks per sample");
        assert!(text.contains(r#""ph":"C""#));
        assert!(text.contains(r#""deps_not_ready":5"#));
        assert!(text.contains(r#""data_miss":3"#));
    }

    #[test]
    fn multicore_trace_has_one_process_per_core_and_flow_arrows() {
        let per_core = vec![sample_events(), sample_events()];
        let arrows = [MigrationArrow {
            cycle: 4096,
            thread: 2,
            from_core: 0,
            to_core: 1,
        }];
        let text = chrome_multicore_trace(&per_core, &arrows);
        let v: serde::Value = serde::json::from_str(&text).expect("multicore trace JSON");
        let serde::Value::Map(obj) = &v else {
            panic!("top level must be an object");
        };
        let (_, entries) = obj.iter().find(|(k, _)| k == "traceEvents").unwrap();
        let serde::Value::Seq(items) = entries else {
            panic!("traceEvents must be an array");
        };
        // 2 process_name metadata + 2x4 events + 4 migration entries.
        assert_eq!(items.len(), 2 + 2 * sample_events().len() + 4);
        assert!(text.contains(r#""name":"core 1""#));
        assert!(text.contains(r#""ph":"s""#), "flow start present");
        assert!(text.contains(r#""ph":"f""#), "flow finish present");
        assert!(text.contains(r#""name":"migrate-in""#));
        // Core 1's events carry pid 1.
        assert!(text.contains(r#""name":"exec","ph":"X","ts":3,"dur":6,"pid":1"#));
    }

    #[test]
    fn prometheus_renders_counters_and_hist_triplets() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("commits/total");
        reg.inc(c, 41);
        let h = reg.hist("iq depth", 0.0, 4.0, 4);
        reg.observe(h, 0.5);
        reg.observe(h, 3.5);
        let text = prometheus(&reg);
        assert!(text.contains("# TYPE smt_commits_total counter"));
        assert!(text.contains("smt_commits_total 41"));
        assert!(text.contains("smt_iq_depth_bucket{le=\"1\"} 1"));
        assert!(text.contains("smt_iq_depth_bucket{le=\"4\"} 2"));
        assert!(text.contains("smt_iq_depth_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("smt_iq_depth_count 2"));
        assert!(text.contains("smt_iq_depth_sum 4.0"));
    }
}
