//! Metrics registry: named monotonic counters and occupancy histograms.
//!
//! The paper's status-indicator hardware generalized: any layer (machine,
//! ADTS core, experiment harness) registers a counter or histogram once,
//! keeps the cheap integer id, and bumps it on the hot path without a name
//! lookup. A registry snapshots into a reusable buffer without allocating
//! — the same discipline as `SmtMachine::counter_snapshot_into` — and
//! exports through [`crate::obs::export::prometheus`].
//!
//! Counters are monotone by construction (`inc` takes an unsigned delta);
//! histograms are `smt_stats::Histogram`, so quantiles, CDFs and merges
//! come for free.

use smt_stats::Histogram;

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Registry of named counters and histograms.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counter_names: Vec<String>,
    counter_values: Vec<u64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
}

/// Values-only copy of a registry at one instant, in registration order.
/// Taking repeated snapshots into the same buffer does not allocate once
/// the shapes have stabilized.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<u64>,
    pub hists: Vec<Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register (or look up) the counter called `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name.to_string());
        self.counter_values.push(0);
        CounterId(self.counter_names.len() - 1)
    }

    /// Register (or look up) the histogram called `name` over `[lo, hi)`
    /// with `bins` equal-width bins. A second registration of the same
    /// name returns the existing histogram regardless of geometry.
    pub fn hist(&mut self, name: &str, lo: f64, hi: f64, bins: usize) -> HistId {
        if let Some(i) = self.hist_names.iter().position(|n| n == name) {
            return HistId(i);
        }
        self.hist_names.push(name.to_string());
        self.hists.push(Histogram::new(lo, hi, bins));
        HistId(self.hist_names.len() - 1)
    }

    /// Bump a counter. Monotone: deltas are unsigned.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counter_values[id.0] += by;
    }

    /// Add a sample to a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, x: f64) {
        self.hists[id.0].add(x);
    }

    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counter_values[id.0]
    }

    pub fn hist_of(&self, id: HistId) -> &Histogram {
        &self.hists[id.0]
    }

    /// `(name, value)` for every counter, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.counter_values.iter().copied())
    }

    /// `(name, histogram)` for every histogram, in registration order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hist_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.hists.iter())
    }

    /// Copy the current values into `out`, reusing its buffers — the
    /// zero-allocation path for periodic snapshot loops.
    pub fn snapshot_into(&self, out: &mut MetricsSnapshot) {
        out.counters.clear();
        out.counters.extend_from_slice(&self.counter_values);
        if out.hists.len() > self.hists.len() {
            out.hists.truncate(self.hists.len());
        }
        for (i, h) in self.hists.iter().enumerate() {
            match out.hists.get_mut(i) {
                Some(slot) => slot.copy_from(h),
                None => out.hists.push(h.clone()),
            }
        }
    }

    /// Allocating convenience wrapper over [`Self::snapshot_into`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        self.snapshot_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("commits");
        let b = r.counter("commits");
        assert_eq!(a, b, "same name must return the same id");
        r.inc(a, 3);
        r.inc(b, 4);
        assert_eq!(r.counter_value(a), 7);
        let all: Vec<(&str, u64)> = r.counters().collect();
        assert_eq!(all, vec![("commits", 7)]);
    }

    #[test]
    fn hists_register_once_and_observe() {
        let mut r = MetricsRegistry::new();
        let h = r.hist("iq_depth", 0.0, 32.0, 32);
        assert_eq!(h, r.hist("iq_depth", 0.0, 64.0, 8));
        r.observe(h, 3.0);
        r.observe(h, 3.5);
        assert_eq!(r.hist_of(h).count(), 2);
    }

    #[test]
    fn snapshot_copies_values_in_registration_order() {
        let mut r = MetricsRegistry::new();
        let c1 = r.counter("a");
        let c2 = r.counter("b");
        let h = r.hist("h", 0.0, 4.0, 4);
        r.inc(c1, 1);
        r.inc(c2, 10);
        r.observe(h, 2.0);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![1, 10]);
        assert_eq!(s.hists[0].count(), 1);
        // Mutating the registry does not touch the snapshot.
        r.inc(c1, 5);
        assert_eq!(s.counters[0], 1);
    }

    #[test]
    fn snapshot_into_reuses_buffers() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("x");
        let h = r.hist("h", 0.0, 4.0, 4);
        let mut snap = MetricsSnapshot::default();
        r.snapshot_into(&mut snap);
        r.inc(c, 2);
        r.observe(h, 1.0);
        r.snapshot_into(&mut snap);
        assert_eq!(snap.counters, vec![2]);
        assert_eq!(snap.hists[0].count(), 1);
        assert_eq!(snap, r.snapshot());
    }
}
