//! Cycle-level observability: event ring, metrics registry, exporters.
//!
//! The paper's ADTS argument rests on *seeing into* the machine — the
//! detector thread reads per-thread status indicators every quantum. This
//! module is that visibility made first-class, in three layers:
//!
//! - [`ring`] — the fixed-capacity [`EventRing`] behind the machine's
//!   typed pipeline-event trace ([`crate::trace`]); emission sits behind
//!   the `const TRACE` monomorphization of `SmtMachine::step_impl`, so an
//!   untraced run compiles every emit point out and stays bit-identical
//!   to the golden fixtures;
//! - [`metrics`] — [`MetricsRegistry`]: named monotonic counters and
//!   occupancy histograms (reusing `smt_stats::Histogram`), registered
//!   once, bumped by id, snapshot without allocation;
//! - [`sampler`] — [`PipelineSampler`]: per-quantum occupancy/utilization
//!   sampling (IQ/LSQ/ROB depth, fetch-slot shares) that only reads the
//!   machine, and [`MultiCoreSampler`], its per-core analogue with
//!   thread-placement and shared-L2 contention instruments;
//! - [`attr`] — slot-accounting attribution ([`SlotAttribution`]): every
//!   fetch/issue/commit slot classified as used or lost-to-a-cause into
//!   per-thread CPI stacks, behind the same `const TRACE` gate;
//! - [`export`] — JSONL, Chrome `trace_event` and Prometheus text dumps.

pub mod attr;
pub mod export;
pub mod metrics;
pub mod ring;
pub mod sampler;

pub use attr::{
    merge_attr_snapshots, register_attr_metrics, AttrSnapshot, CommitCause, FetchCause, IssueCause,
    SlotAttribution, SlotStack,
};
pub use export::MigrationArrow;
pub use metrics::{CounterId, HistId, MetricsRegistry, MetricsSnapshot};
pub use ring::EventRing;
pub use sampler::{MultiCoreSampler, PipelineSampler};
