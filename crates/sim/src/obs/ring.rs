//! Fixed-capacity event ring.
//!
//! The storage behind [`crate::trace::TraceBuffer`], generic so tests and
//! external tooling can ring-buffer their own event types with the same
//! drop-oldest semantics. Pushing is O(1) amortized and never allocates
//! once the ring has filled.

use std::collections::VecDeque;

/// Bounded ring: the newest `cap` pushed values are retained, oldest drop
/// first.
#[derive(Clone, Debug, Default)]
pub struct EventRing<T> {
    cap: usize,
    ring: VecDeque<T>,
    /// Total values ever recorded (including dropped ones).
    pub recorded: u64,
}

impl<T> EventRing<T> {
    /// Panics if `cap == 0` — a ring that can hold nothing silently drops
    /// everything, which is never what a tracing caller wants.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "zero-capacity trace");
        EventRing {
            cap,
            ring: VecDeque::with_capacity(cap.min(4096)),
            recorded: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, ev: T) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
        self.recorded += 1;
    }

    /// Retained values, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.ring.iter()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum number of retained values.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many recorded values have been dropped to honor the capacity.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_newest_cap_values() {
        let mut r = EventRing::new(3);
        for i in 0..7u64 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.recorded, 7);
        assert_eq!(r.dropped(), 4);
        let vals: Vec<u64> = r.iter().copied().collect();
        assert_eq!(vals, vec![4, 5, 6]);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = EventRing::new(10);
        r.push("a");
        r.push("b");
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = EventRing::<u8>::new(0);
    }
}
