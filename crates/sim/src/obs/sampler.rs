//! Periodic pipeline occupancy sampling.
//!
//! A [`PipelineSampler`] registers the canonical occupancy histograms
//! (shared IQ/LSQ depth, per-thread ROB depth) and fetch-slot utilization
//! counters in a [`MetricsRegistry`], then records one sample per call to
//! [`PipelineSampler::sample`] — typically once per scheduling quantum,
//! the granularity the paper's detector thread observes at. Sampling only
//! *reads* machine state, so it can never perturb simulation results (the
//! differential test in `tests/obs_differential.rs` pins this).

use crate::machine::SmtMachine;
use crate::obs::metrics::{CounterId, HistId, MetricsRegistry};

/// Occupancy/utilization sampler over one machine.
#[derive(Clone, Debug)]
pub struct PipelineSampler {
    h_int_iq: HistId,
    h_fp_iq: HistId,
    h_lsq: HistId,
    h_rob: HistId,
    c_samples: CounterId,
    /// Machine-wide fetch slots actually filled since the last sample.
    c_fetch_slots: CounterId,
    /// Per-thread fetched micro-ops (correct + wrong path) since the last
    /// sample, i.e. each thread's share of the fetch bandwidth.
    c_thread_fetch: Vec<CounterId>,
    last_thread_fetch: Vec<u64>,
    last_fetch_slots: u64,
}

impl PipelineSampler {
    /// Register the sampler's instruments for `machine` in `reg`.
    /// Histogram ranges come from the machine's configured queue sizes, so
    /// a full queue lands in the top bin rather than clamping early.
    pub fn new(reg: &mut MetricsRegistry, machine: &SmtMachine) -> Self {
        let cfg = machine.config();
        let n = machine.n_threads();
        let depth_hist = |reg: &mut MetricsRegistry, name: &str, size: usize| {
            let bins = (size + 1).min(64);
            reg.hist(name, 0.0, (size + 1) as f64, bins)
        };
        PipelineSampler {
            h_int_iq: depth_hist(reg, "int_iq_depth", cfg.int_iq_size),
            h_fp_iq: depth_hist(reg, "fp_iq_depth", cfg.fp_iq_size),
            h_lsq: depth_hist(reg, "lsq_depth", cfg.lsq_size),
            h_rob: depth_hist(reg, "rob_depth_per_thread", cfg.rob_per_thread),
            c_samples: reg.counter("obs_samples"),
            c_fetch_slots: reg.counter("fetch_slots_used"),
            c_thread_fetch: (0..n)
                .map(|t| reg.counter(&format!("thread{t}_fetch_slots")))
                .collect(),
            last_thread_fetch: vec![0; n],
            last_fetch_slots: 0,
        }
    }

    /// Record one sample of `machine`'s occupancies into `reg`.
    /// Read-only with respect to the machine.
    pub fn sample(&mut self, machine: &SmtMachine, reg: &mut MetricsRegistry) {
        reg.inc(self.c_samples, 1);
        reg.observe(self.h_int_iq, machine.int_iq_len() as f64);
        reg.observe(self.h_fp_iq, machine.fp_iq_len() as f64);
        reg.observe(self.h_lsq, machine.lsq_len() as f64);
        for t in 0..machine.n_threads() {
            let tid = smt_isa::Tid(t as u8);
            reg.observe(self.h_rob, machine.window_len(tid) as f64);
            let c = machine.counters(tid);
            let now = c.fetched + c.wrongpath_fetched;
            let delta = now.saturating_sub(self.last_thread_fetch[t]);
            self.last_thread_fetch[t] = now;
            reg.inc(self.c_thread_fetch[t], delta);
        }
        let slots = machine.global().fetch_slots_used;
        reg.inc(
            self.c_fetch_slots,
            slots.saturating_sub(self.last_fetch_slots),
        );
        self.last_fetch_slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::RoundRobin;
    use crate::config::SimConfig;
    use smt_workloads::mix;

    fn machine() -> SmtMachine {
        let m = mix(1).take_threads(2, 1);
        SmtMachine::new(SimConfig::with_threads(2), m.streams(42))
    }

    #[test]
    fn sampler_accumulates_fetch_deltas() {
        let mut m = machine();
        let mut reg = MetricsRegistry::new();
        let mut s = PipelineSampler::new(&mut reg, &m);
        for _ in 0..4 {
            m.run(512, &mut RoundRobin);
            s.sample(&m, &mut reg);
        }
        let samples = reg.counter("obs_samples");
        assert_eq!(reg.counter_value(samples), 4);
        let slots = reg.counter("fetch_slots_used");
        assert_eq!(
            reg.counter_value(slots),
            m.global().fetch_slots_used,
            "summed deltas must equal the machine's cumulative count"
        );
        let per_thread: u64 = (0..2)
            .map(|t| {
                let c = reg.counter(&format!("thread{t}_fetch_slots"));
                reg.counter_value(c)
            })
            .sum();
        assert_eq!(per_thread, m.global().fetch_slots_used);
        let rob = reg.hist("rob_depth_per_thread", 0.0, 1.0, 1);
        assert_eq!(reg.hist_of(rob).count(), 8, "2 threads x 4 samples");
    }

    #[test]
    fn sampling_does_not_mutate_the_machine() {
        let mut a = machine();
        let mut b = machine();
        let mut reg = MetricsRegistry::new();
        let mut s = PipelineSampler::new(&mut reg, &a);
        for _ in 0..3 {
            a.run(256, &mut RoundRobin);
            s.sample(&a, &mut reg);
            b.run(256, &mut RoundRobin);
        }
        assert_eq!(a.counter_snapshot(), b.counter_snapshot());
        assert_eq!(a.debug_snapshot(), b.debug_snapshot());
    }
}
