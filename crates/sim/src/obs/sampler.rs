//! Periodic pipeline occupancy sampling.
//!
//! A [`PipelineSampler`] registers the canonical occupancy histograms
//! (shared IQ/LSQ depth, per-thread ROB depth) and fetch-slot utilization
//! counters in a [`MetricsRegistry`], then records one sample per call to
//! [`PipelineSampler::sample`] — typically once per scheduling quantum,
//! the granularity the paper's detector thread observes at. Sampling only
//! *reads* machine state, so it can never perturb simulation results (the
//! differential test in `tests/obs_differential.rs` pins this).

use crate::machine::SmtMachine;
use crate::multicore::MultiCoreMachine;
use crate::obs::metrics::{CounterId, HistId, MetricsRegistry};

/// Occupancy/utilization sampler over one machine.
#[derive(Clone, Debug)]
pub struct PipelineSampler {
    h_int_iq: HistId,
    h_fp_iq: HistId,
    h_lsq: HistId,
    h_rob: HistId,
    c_samples: CounterId,
    /// Machine-wide fetch slots actually filled since the last sample.
    c_fetch_slots: CounterId,
    /// Per-thread fetched micro-ops (correct + wrong path) since the last
    /// sample, i.e. each thread's share of the fetch bandwidth.
    c_thread_fetch: Vec<CounterId>,
    /// Cycles covered by event-horizon fast-forward since the last
    /// sample (how much wall-clock the skip engine saved this interval).
    c_skipped: CounterId,
    last_thread_fetch: Vec<u64>,
    last_fetch_slots: u64,
    last_skipped: u64,
}

impl PipelineSampler {
    /// Register the sampler's instruments for `machine` in `reg`.
    /// Histogram ranges come from the machine's configured queue sizes, so
    /// a full queue lands in the top bin rather than clamping early.
    pub fn new(reg: &mut MetricsRegistry, machine: &SmtMachine) -> Self {
        let cfg = machine.config();
        let n = machine.n_threads();
        let depth_hist = |reg: &mut MetricsRegistry, name: &str, size: usize| {
            let bins = (size + 1).min(64);
            reg.hist(name, 0.0, (size + 1) as f64, bins)
        };
        PipelineSampler {
            h_int_iq: depth_hist(reg, "int_iq_depth", cfg.int_iq_size),
            h_fp_iq: depth_hist(reg, "fp_iq_depth", cfg.fp_iq_size),
            h_lsq: depth_hist(reg, "lsq_depth", cfg.lsq_size),
            h_rob: depth_hist(reg, "rob_depth_per_thread", cfg.rob_per_thread),
            c_samples: reg.counter("obs_samples"),
            c_fetch_slots: reg.counter("fetch_slots_used"),
            c_thread_fetch: (0..n)
                .map(|t| reg.counter(&format!("thread{t}_fetch_slots")))
                .collect(),
            c_skipped: reg.counter("skipped_cycles"),
            last_thread_fetch: vec![0; n],
            last_fetch_slots: 0,
            last_skipped: 0,
        }
    }

    /// Record one sample of `machine`'s occupancies into `reg`.
    /// Read-only with respect to the machine.
    pub fn sample(&mut self, machine: &SmtMachine, reg: &mut MetricsRegistry) {
        reg.inc(self.c_samples, 1);
        reg.observe(self.h_int_iq, machine.int_iq_len() as f64);
        reg.observe(self.h_fp_iq, machine.fp_iq_len() as f64);
        reg.observe(self.h_lsq, machine.lsq_len() as f64);
        for t in 0..machine.n_threads() {
            let tid = smt_isa::Tid(t as u8);
            reg.observe(self.h_rob, machine.window_len(tid) as f64);
            let c = machine.counters(tid);
            let now = c.fetched + c.wrongpath_fetched;
            let delta = now.saturating_sub(self.last_thread_fetch[t]);
            self.last_thread_fetch[t] = now;
            reg.inc(self.c_thread_fetch[t], delta);
        }
        let slots = machine.global().fetch_slots_used;
        reg.inc(
            self.c_fetch_slots,
            slots.saturating_sub(self.last_fetch_slots),
        );
        self.last_fetch_slots = slots;
        let skipped = machine.skipped_cycles();
        reg.inc(self.c_skipped, skipped.saturating_sub(self.last_skipped));
        self.last_skipped = skipped;
    }
}

/// Occupancy/placement sampler over a [`MultiCoreMachine`].
///
/// The multi-core analogue of [`PipelineSampler`]: per-core IQ/LSQ/ROB
/// occupancy histograms (metric names prefixed `core{c}_`), per-core
/// fetch-slot and shared-L2 contention counters, and per-global-thread
/// placement over time (`thread{g}_core` histograms plus cumulative
/// migration counters). Like the single-core sampler it only *reads*
/// machine state, so it can never perturb simulation results
/// (`tests/obs_multicore_differential.rs` pins this).
#[derive(Clone, Debug)]
pub struct MultiCoreSampler {
    /// Per core: (int IQ, fp IQ, LSQ, per-thread ROB) depth histograms.
    h_core: Vec<(HistId, HistId, HistId, HistId)>,
    /// Per core: fetch slots filled since the last sample.
    c_core_fetch: Vec<CounterId>,
    /// Per core: cycles covered by event-horizon fast-forward since the
    /// last sample.
    c_core_skipped: Vec<CounterId>,
    /// Per core: shared-L2 misses charged to threads resident on the
    /// core at sampling time (inter-core contention attribution).
    c_core_l2_miss: Vec<CounterId>,
    /// Per global thread: which core it resided on at each sample.
    h_thread_core: Vec<HistId>,
    /// Per global thread: completed cross-core migrations.
    c_thread_migrations: Vec<CounterId>,
    c_samples: CounterId,
    c_l2_accesses: CounterId,
    c_l2_misses: CounterId,
    last_core_fetch: Vec<u64>,
    last_core_skipped: Vec<u64>,
    last_thread_l2_miss: Vec<u64>,
    last_thread_migrations: Vec<u64>,
    last_l2: (u64, u64),
}

impl MultiCoreSampler {
    /// Register the sampler's instruments for `machine` in `reg`.
    pub fn new(reg: &mut MetricsRegistry, machine: &MultiCoreMachine) -> Self {
        let n_cores = machine.n_cores();
        let n_threads = machine.n_threads();
        let depth_hist = |reg: &mut MetricsRegistry, name: &str, size: usize| {
            let bins = (size + 1).min(64);
            reg.hist(name, 0.0, (size + 1) as f64, bins)
        };
        let h_core = (0..n_cores)
            .map(|c| {
                let cfg = machine.core(c).config();
                (
                    depth_hist(reg, &format!("core{c}_int_iq_depth"), cfg.int_iq_size),
                    depth_hist(reg, &format!("core{c}_fp_iq_depth"), cfg.fp_iq_size),
                    depth_hist(reg, &format!("core{c}_lsq_depth"), cfg.lsq_size),
                    depth_hist(
                        reg,
                        &format!("core{c}_rob_depth_per_thread"),
                        cfg.rob_per_thread,
                    ),
                )
            })
            .collect();
        MultiCoreSampler {
            h_core,
            c_core_fetch: (0..n_cores)
                .map(|c| reg.counter(&format!("core{c}_fetch_slots")))
                .collect(),
            c_core_skipped: (0..n_cores)
                .map(|c| reg.counter(&format!("core{c}_skipped_cycles")))
                .collect(),
            c_core_l2_miss: (0..n_cores)
                .map(|c| reg.counter(&format!("core{c}_l2_misses")))
                .collect(),
            h_thread_core: (0..n_threads)
                .map(|g| reg.hist(&format!("thread{g}_core"), 0.0, n_cores as f64, n_cores))
                .collect(),
            c_thread_migrations: (0..n_threads)
                .map(|g| reg.counter(&format!("thread{g}_migrations")))
                .collect(),
            c_samples: reg.counter("mc_samples"),
            c_l2_accesses: reg.counter("shared_l2_accesses"),
            c_l2_misses: reg.counter("shared_l2_misses"),
            last_core_fetch: vec![0; n_cores],
            last_core_skipped: vec![0; n_cores],
            last_thread_l2_miss: vec![0; n_threads],
            last_thread_migrations: vec![0; n_threads],
            last_l2: (0, 0),
        }
    }

    /// Record one sample of `machine` into `reg`. Read-only with respect
    /// to the machine.
    pub fn sample(&mut self, machine: &MultiCoreMachine, reg: &mut MetricsRegistry) {
        reg.inc(self.c_samples, 1);
        for (c, &(h_int, h_fp, h_lsq, h_rob)) in self.h_core.iter().enumerate() {
            let core = machine.core(c);
            reg.observe(h_int, core.int_iq_len() as f64);
            reg.observe(h_fp, core.fp_iq_len() as f64);
            reg.observe(h_lsq, core.lsq_len() as f64);
            for s in 0..core.n_threads() {
                reg.observe(h_rob, core.window_len(smt_isa::Tid(s as u8)) as f64);
            }
            let slots = core.global().fetch_slots_used;
            let delta = slots.saturating_sub(self.last_core_fetch[c]);
            self.last_core_fetch[c] = slots;
            reg.inc(self.c_core_fetch[c], delta);
            let skipped = core.skipped_cycles();
            let sdelta = skipped.saturating_sub(self.last_core_skipped[c]);
            self.last_core_skipped[c] = skipped;
            reg.inc(self.c_core_skipped[c], sdelta);
        }
        for g in 0..machine.n_threads() {
            let (c, _) = machine.placement()[g];
            reg.observe(self.h_thread_core[g], c as f64);
            let misses = machine.thread_counters(g).l2_misses;
            let delta = misses.saturating_sub(self.last_thread_l2_miss[g]);
            self.last_thread_l2_miss[g] = misses;
            // Contention attribution: the interval's L2 misses land on
            // the core the thread resides on when sampled.
            reg.inc(self.c_core_l2_miss[c], delta);
            let migs = machine.migrations()[g];
            let mdelta = migs.saturating_sub(self.last_thread_migrations[g]);
            self.last_thread_migrations[g] = migs;
            reg.inc(self.c_thread_migrations[g], mdelta);
        }
        let (acc, miss) = machine.shared_l2_stats();
        reg.inc(self.c_l2_accesses, acc.saturating_sub(self.last_l2.0));
        reg.inc(self.c_l2_misses, miss.saturating_sub(self.last_l2.1));
        self.last_l2 = (acc, miss);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::RoundRobin;
    use crate::config::SimConfig;
    use smt_workloads::mix;

    fn machine() -> SmtMachine {
        let m = mix(1).take_threads(2, 1);
        SmtMachine::new(SimConfig::with_threads(2), m.streams(42))
    }

    #[test]
    fn sampler_accumulates_fetch_deltas() {
        let mut m = machine();
        let mut reg = MetricsRegistry::new();
        let mut s = PipelineSampler::new(&mut reg, &m);
        for _ in 0..4 {
            m.run(512, &mut RoundRobin);
            s.sample(&m, &mut reg);
        }
        let samples = reg.counter("obs_samples");
        assert_eq!(reg.counter_value(samples), 4);
        let slots = reg.counter("fetch_slots_used");
        assert_eq!(
            reg.counter_value(slots),
            m.global().fetch_slots_used,
            "summed deltas must equal the machine's cumulative count"
        );
        let per_thread: u64 = (0..2)
            .map(|t| {
                let c = reg.counter(&format!("thread{t}_fetch_slots"));
                reg.counter_value(c)
            })
            .sum();
        assert_eq!(per_thread, m.global().fetch_slots_used);
        let rob = reg.hist("rob_depth_per_thread", 0.0, 1.0, 1);
        assert_eq!(reg.hist_of(rob).count(), 8, "2 threads x 4 samples");
        let skipped = reg.counter("skipped_cycles");
        assert_eq!(
            reg.counter_value(skipped),
            m.skipped_cycles(),
            "summed skip deltas must equal the machine's odometer"
        );
    }

    #[test]
    fn sampling_does_not_mutate_the_machine() {
        let mut a = machine();
        let mut b = machine();
        let mut reg = MetricsRegistry::new();
        let mut s = PipelineSampler::new(&mut reg, &a);
        for _ in 0..3 {
            a.run(256, &mut RoundRobin);
            s.sample(&a, &mut reg);
            b.run(256, &mut RoundRobin);
        }
        assert_eq!(a.counter_snapshot(), b.counter_snapshot());
        assert_eq!(a.debug_snapshot(), b.debug_snapshot());
    }

    fn two_core_machine() -> MultiCoreMachine {
        let placement = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        MultiCoreMachine::from_cores(vec![machine(), machine()], placement, 64)
    }

    #[test]
    fn multicore_sampler_accumulates_per_core_deltas() {
        let mut m = two_core_machine();
        let mut reg = MetricsRegistry::new();
        let mut s = MultiCoreSampler::new(&mut reg, &m);
        for _ in 0..4 {
            m.run(512, &mut [RoundRobin, RoundRobin]);
            s.sample(&m, &mut reg);
        }
        let samples = reg.counter("mc_samples");
        assert_eq!(reg.counter_value(samples), 4);
        for c in 0..2 {
            let id = reg.counter(&format!("core{c}_fetch_slots"));
            assert_eq!(
                reg.counter_value(id),
                m.core(c).global().fetch_slots_used,
                "core {c}: summed deltas must equal the cumulative count"
            );
            let sk = reg.counter(&format!("core{c}_skipped_cycles"));
            assert_eq!(
                reg.counter_value(sk),
                m.core(c).skipped_cycles(),
                "core {c}: summed skip deltas must equal the core's odometer"
            );
        }
        let (acc, miss) = m.shared_l2_stats();
        let a = reg.counter("shared_l2_accesses");
        let mi = reg.counter("shared_l2_misses");
        assert_eq!(reg.counter_value(a), acc);
        assert_eq!(reg.counter_value(mi), miss);
        // Every thread's placement hist has one observation per sample,
        // all on its (static here) home core.
        for g in 0..m.n_threads() {
            let h = reg.hist(&format!("thread{g}_core"), 0.0, 1.0, 1);
            assert_eq!(reg.hist_of(h).count(), 4);
        }
    }

    #[test]
    fn multicore_sampling_does_not_mutate_the_machine() {
        let mut a = two_core_machine();
        let mut b = two_core_machine();
        let mut reg = MetricsRegistry::new();
        let mut s = MultiCoreSampler::new(&mut reg, &a);
        for _ in 0..3 {
            a.run(256, &mut [RoundRobin, RoundRobin]);
            s.sample(&a, &mut reg);
            b.run(256, &mut [RoundRobin, RoundRobin]);
        }
        assert_eq!(
            serde::json::to_string(&a.counter_snapshot()),
            serde::json::to_string(&b.counter_snapshot())
        );
    }
}
