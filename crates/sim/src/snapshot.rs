//! Versioned machine snapshots: capture/restore of the full [`SmtMachine`]
//! state plus a self-describing binary container.
//!
//! A snapshot is the warm-state currency of the bench layer's checkpoint
//! subsystem: `warmed_machine` captures once per (mix, config, seed,
//! warmup) point and every sweep cell restores a copy instead of paying
//! the warmup simulation again. Two guarantees anchor the design:
//!
//! - **Bit-identity.** [`MachineSnapshot::capture`] is a clean clone of
//!   the machine (instrumentation stripped — trace buffers and slot
//!   attribution are observation state, not simulated state), and
//!   [`MachineSnapshot::restore`] clones it back out, so a restored
//!   machine is *the same value* the `clone_resumes_identically` test
//!   already pins. The binary round trip preserves that: every RNG,
//!   cache stamp, predictor counter and in-flight op is encoded exactly
//!   (`snapshot → to_bytes → from_bytes → restore` is covered by the
//!   machine-equivalence proptests).
//! - **Fail-safe decoding.** The container is versioned, length-framed
//!   and checksummed; corrupt, truncated or version-bumped bytes decode
//!   to a [`CodecError`], never a panic — callers fall back to a cold
//!   warmup.
//!
//! **No fast-forward state is serialized.** The event-horizon skip
//! engine (`SmtMachine::stall_horizon`) is *derived* entirely from
//! state this container already carries — stall-until cycles, in-flight
//! `done_at` deadlines, the syscall drain queue — and the `skip_enabled`
//! switch plus the `skipped_cycles` odometer are host-side observability,
//! not simulated state. Serializing any of it would make snapshot bytes
//! depend on *how* a machine reached a cycle (skipped vs stepped),
//! destroying the byte-identity contract above; instead a decoded
//! machine re-adopts the process-wide skip default and restarts its
//! odometer at zero, exactly like the transient wake arena and `l2_rot`
//! stamp.
//!
//! Container layout (little-endian):
//!
//! ```text
//! magic    [u8; 8]   = b"SMTCKPT\0"
//! version  u32       = FORMAT_VERSION
//! len      u64       payload byte count
//! payload  [u8; len] SmtMachine state (see machine.rs encode_into)
//! checksum u64       FNV-1a 64 of payload
//! ```

use crate::machine::SmtMachine;
use smt_isa::codec::{fnv1a_64, ByteReader, ByteWriter, CodecError};

/// Leading magic of every checkpoint container.
pub const MAGIC: [u8; 8] = *b"SMTCKPT\0";

/// Current container format version. Bump on any layout change — old
/// files then decode to [`CodecError::UnsupportedVersion`] and are
/// recomputed, never misinterpreted.
///
/// v2: `UopStream` state gained a leading backend tag (synthetic vs
/// trace replay), changing the thread payload layout.
///
/// v3: `ThreadCtx` gained `migration_stall_until` (cross-core migration
/// cold-frontend penalty), changing the thread payload layout.
pub const FORMAT_VERSION: u32 = 3;

/// A captured warm machine state.
///
/// Cheap to clone (no instrumentation attached) and safe to share behind
/// an `Arc`: [`Self::restore`] takes `&self`.
#[derive(Clone, Debug)]
pub struct MachineSnapshot {
    state: SmtMachine,
}

impl MachineSnapshot {
    /// Capture `machine`'s complete simulated state. Instrumentation
    /// (event trace, slot attribution) is not part of the snapshot: the
    /// restored machine starts with both disabled, exactly like a machine
    /// that was never instrumented.
    pub fn capture(machine: &SmtMachine) -> Self {
        let mut state = machine.clone();
        state.disable_trace();
        state.disable_attr();
        MachineSnapshot { state }
    }

    /// A machine that will simulate bit-identically to the captured one.
    pub fn restore(&self) -> SmtMachine {
        self.state.clone()
    }

    /// Cycle count at capture time.
    pub fn cycle(&self) -> u64 {
        self.state.cycle()
    }

    /// Hardware contexts in the captured machine.
    pub fn n_threads(&self) -> usize {
        self.state.n_threads()
    }

    /// Serialize into the versioned, checksummed container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut pw = ByteWriter::with_capacity(64 << 10);
        self.state.encode_into(&mut pw);
        let payload = pw.into_bytes();
        let mut w = ByteWriter::with_capacity(payload.len() + 28);
        w.raw(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u64(payload.len() as u64);
        w.raw(&payload);
        w.u64(fnv1a_64(&payload));
        w.into_bytes()
    }

    /// Parse a container produced by [`Self::to_bytes`]. Every corruption
    /// mode returns an error: wrong magic, unknown version, truncation
    /// (length frame or payload), checksum mismatch, trailing bytes, and
    /// any structural inconsistency inside the payload itself.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let len = r.usize()?;
        let payload = r.take(len)?;
        let checksum = r.u64()?;
        r.finish()?;
        if fnv1a_64(payload) != checksum {
            return Err(CodecError::ChecksumMismatch);
        }
        let mut pr = ByteReader::new(payload);
        let state = SmtMachine::decode_from(&mut pr)?;
        pr.finish()?;
        Ok(MachineSnapshot { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::RoundRobin;
    use crate::config::SimConfig;
    use smt_isa::AppProfile;
    use smt_workloads::UopStream;
    use std::sync::Arc;

    fn machine(n: usize, seed: u64) -> SmtMachine {
        let streams = (0..n)
            .map(|i| {
                UopStream::new(
                    Arc::new(AppProfile::builder("t").build()),
                    seed + i as u64,
                    smt_workloads::thread_addr_base(i),
                )
            })
            .collect();
        SmtMachine::new(SimConfig::with_threads(n), streams)
    }

    #[test]
    fn restore_resumes_identically_in_memory() {
        let mut a = machine(2, 11);
        a.run(2_000, &mut RoundRobin);
        let snap = MachineSnapshot::capture(&a);
        let mut b = snap.restore();
        a.run(2_000, &mut RoundRobin);
        b.run(2_000, &mut RoundRobin);
        assert_eq!(a.total_committed(), b.total_committed());
        assert_eq!(a.global(), b.global());
        assert_eq!(a.counter_snapshot(), b.counter_snapshot());
    }

    #[test]
    fn binary_roundtrip_resumes_identically() {
        let mut a = machine(4, 13);
        a.run(3_000, &mut RoundRobin);
        let bytes = MachineSnapshot::capture(&a).to_bytes();
        let snap = MachineSnapshot::from_bytes(&bytes).expect("decode");
        assert_eq!(snap.cycle(), a.cycle());
        assert_eq!(snap.n_threads(), 4);
        let mut b = snap.restore();
        b.check_invariants();
        a.run(3_000, &mut RoundRobin);
        b.run(3_000, &mut RoundRobin);
        assert_eq!(a.total_committed(), b.total_committed());
        assert_eq!(a.global(), b.global());
        assert_eq!(a.counter_snapshot(), b.counter_snapshot());
    }

    #[test]
    fn capture_strips_instrumentation() {
        let mut m = machine(2, 17);
        m.enable_trace(128);
        m.enable_attr();
        m.run(500, &mut RoundRobin);
        let snap = MachineSnapshot::capture(&m);
        let restored = snap.restore();
        assert!(restored.trace().is_none());
        assert!(restored.attr().is_none());
        // The original keeps its instrumentation.
        assert!(m.trace().is_some());
    }

    #[test]
    fn serialization_is_deterministic() {
        let mut m = machine(2, 19);
        m.run(1_000, &mut RoundRobin);
        let a = MachineSnapshot::capture(&m).to_bytes();
        let b = MachineSnapshot::capture(&m).to_bytes();
        assert_eq!(a, b, "same state must serialize to identical bytes");
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut m = machine(1, 23);
        m.run(200, &mut RoundRobin);
        let mut bytes = MachineSnapshot::capture(&m).to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            MachineSnapshot::from_bytes(&bytes),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn version_bump_is_an_error() {
        let mut m = machine(1, 23);
        m.run(200, &mut RoundRobin);
        let mut bytes = MachineSnapshot::capture(&m).to_bytes();
        bytes[8] = FORMAT_VERSION as u8 + 1; // little-endian low byte
        assert!(matches!(
            MachineSnapshot::from_bytes(&bytes),
            Err(CodecError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn truncation_is_an_error_at_every_cut() {
        let mut m = machine(1, 29);
        m.run(200, &mut RoundRobin);
        let bytes = MachineSnapshot::capture(&m).to_bytes();
        // Exhaustive cuts are slow on a full snapshot; probe a spread.
        for frac in 1..20 {
            let cut = bytes.len() * frac / 20;
            assert!(
                MachineSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}/{} decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut m = machine(1, 31);
        m.run(200, &mut RoundRobin);
        let mut bytes = MachineSnapshot::capture(&m).to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            MachineSnapshot::from_bytes(&bytes),
            Err(CodecError::ChecksumMismatch)
        ));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let mut m = machine(1, 37);
        m.run(200, &mut RoundRobin);
        let mut bytes = MachineSnapshot::capture(&m).to_bytes();
        bytes.push(0);
        assert!(MachineSnapshot::from_bytes(&bytes).is_err());
    }
}
