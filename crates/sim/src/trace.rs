//! Opt-in pipeline event tracing.
//!
//! A bounded ring of [`TraceEvent`]s the machine appends to when tracing
//! is enabled (`SmtMachine::enable_trace`). Disabled by default and fully
//! skipped in that case, so the hot loop pays one branch. Useful for
//! debugging scheduling pathologies at cycle resolution — e.g. watching a
//! clogging thread's ops monopolize dispatch slots, or a squash ripple
//! through the queues.

use smt_isa::{OpKind, Tid};
use std::collections::VecDeque;

/// One pipeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An op entered the window at fetch.
    Fetch {
        cycle: u64,
        tid: Tid,
        seq: u64,
        kind: OpKind,
        wrong_path: bool,
    },
    /// An op left the decode pipe into an instruction queue.
    Dispatch { cycle: u64, tid: Tid, seq: u64 },
    /// An op began executing.
    Issue {
        cycle: u64,
        tid: Tid,
        seq: u64,
        done_at: u64,
    },
    /// An op finished executing.
    Complete { cycle: u64, tid: Tid, seq: u64 },
    /// An op retired.
    Commit { cycle: u64, tid: Tid, seq: u64 },
    /// A mispredict recovery removed every op of `tid` younger than
    /// `after_seq` (`victims` of them).
    Squash {
        cycle: u64,
        tid: Tid,
        after_seq: u64,
        victims: usize,
    },
}

impl TraceEvent {
    /// The cycle the event occurred in.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Dispatch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Complete { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Squash { cycle, .. } => cycle,
        }
    }

    /// The thread the event belongs to.
    pub fn tid(&self) -> Tid {
        match *self {
            TraceEvent::Fetch { tid, .. }
            | TraceEvent::Dispatch { tid, .. }
            | TraceEvent::Issue { tid, .. }
            | TraceEvent::Complete { tid, .. }
            | TraceEvent::Commit { tid, .. }
            | TraceEvent::Squash { tid, .. } => tid,
        }
    }
}

/// Bounded event ring: oldest events drop first.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    cap: usize,
    ring: VecDeque<TraceEvent>,
    /// Total events ever recorded (including dropped ones).
    pub recorded: u64,
}

impl TraceBuffer {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "zero-capacity trace");
        TraceBuffer {
            cap,
            ring: VecDeque::with_capacity(cap.min(4096)),
            recorded: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
        self.recorded += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retained events for one thread, oldest first.
    pub fn for_thread(&self, tid: Tid) -> Vec<TraceEvent> {
        self.ring
            .iter()
            .copied()
            .filter(|e| e.tid() == tid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, tid: u8, seq: u64) -> TraceEvent {
        TraceEvent::Fetch {
            cycle,
            tid: Tid(tid),
            seq,
            kind: OpKind::IntAlu,
            wrong_path: false,
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.push(ev(i, 0, i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded, 5);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn per_thread_filter() {
        let mut t = TraceBuffer::new(10);
        t.push(ev(0, 0, 0));
        t.push(ev(1, 1, 0));
        t.push(ev(2, 0, 1));
        assert_eq!(t.for_thread(Tid(0)).len(), 2);
        assert_eq!(t.for_thread(Tid(1)).len(), 1);
        assert!(t.for_thread(Tid(2)).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_cap_panics() {
        let _ = TraceBuffer::new(0);
    }
}
