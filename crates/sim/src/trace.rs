//! Opt-in pipeline event tracing.
//!
//! A bounded ring of [`TraceEvent`]s the machine appends to when tracing
//! is enabled (`SmtMachine::enable_trace`). Disabled by default and fully
//! skipped in that case, so the hot loop pays one branch. Useful for
//! debugging scheduling pathologies at cycle resolution — e.g. watching a
//! clogging thread's ops monopolize dispatch slots, or a squash ripple
//! through the queues.
//!
//! Events serialize through `serde`, so a buffer drains losslessly into
//! the [`crate::obs::export`] formats (JSONL, Chrome `trace_event`).

use crate::obs::EventRing;
use serde::{Deserialize, Serialize};
use smt_isa::{OpKind, Tid};

/// Which cache level a [`TraceEvent::CacheMiss`] missed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissLevel {
    /// L1 instruction cache (fetch side).
    L1I,
    /// L1 data cache (load/store issue).
    L1D,
    /// Unified L2 (always accompanies an L1 miss event).
    L2,
}

/// One pipeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An op entered the window at fetch.
    Fetch {
        cycle: u64,
        tid: Tid,
        seq: u64,
        kind: OpKind,
        wrong_path: bool,
    },
    /// An op left the decode pipe into an instruction queue.
    Dispatch { cycle: u64, tid: Tid, seq: u64 },
    /// An op began executing.
    Issue {
        cycle: u64,
        tid: Tid,
        seq: u64,
        done_at: u64,
    },
    /// An op finished executing.
    Complete { cycle: u64, tid: Tid, seq: u64 },
    /// An op retired.
    Commit { cycle: u64, tid: Tid, seq: u64 },
    /// A mispredict recovery removed every op of `tid` younger than
    /// `after_seq` (`victims` of them).
    Squash {
        cycle: u64,
        tid: Tid,
        after_seq: u64,
        victims: usize,
    },
    /// `flush_thread` returned all of `tid`'s shared resources
    /// (`victims` in-flight ops discarded).
    Flush {
        cycle: u64,
        tid: Tid,
        victims: usize,
    },
    /// A cache access missed at `level`; `addr` is the data address for
    /// `L1D`, the fetch PC for `L1I`, and whichever of the two triggered
    /// the access for `L2`. `rot` is the arbitration-rotation context:
    /// the issuing core's position in the shared-L2 rotation order of a
    /// [`crate::MultiCoreMachine`] (core `rot` observes the L2 after
    /// cores `0..rot` accessed it this cycle), and 0 on a standalone
    /// [`crate::SmtMachine`].
    CacheMiss {
        cycle: u64,
        tid: Tid,
        addr: u64,
        level: MissLevel,
        rot: u8,
    },
    /// The thread selection unit changed fetch policy; `from`/`to` index
    /// `FetchPolicy::ALL` (Table 1 order).
    PolicySwitch { cycle: u64, from: u8, to: u8 },
}

impl TraceEvent {
    /// The cycle the event occurred in.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Dispatch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Complete { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Squash { cycle, .. }
            | TraceEvent::Flush { cycle, .. }
            | TraceEvent::CacheMiss { cycle, .. }
            | TraceEvent::PolicySwitch { cycle, .. } => cycle,
        }
    }

    /// The thread the event belongs to; `None` for machine-wide events
    /// (policy switches).
    pub fn tid(&self) -> Option<Tid> {
        match *self {
            TraceEvent::Fetch { tid, .. }
            | TraceEvent::Dispatch { tid, .. }
            | TraceEvent::Issue { tid, .. }
            | TraceEvent::Complete { tid, .. }
            | TraceEvent::Commit { tid, .. }
            | TraceEvent::Squash { tid, .. }
            | TraceEvent::Flush { tid, .. }
            | TraceEvent::CacheMiss { tid, .. } => Some(tid),
            TraceEvent::PolicySwitch { .. } => None,
        }
    }
}

/// Bounded event ring: oldest events drop first.
pub type TraceBuffer = EventRing<TraceEvent>;

impl EventRing<TraceEvent> {
    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.iter()
    }

    /// Retained events for one thread, oldest first.
    pub fn for_thread(&self, tid: Tid) -> Vec<TraceEvent> {
        self.iter()
            .copied()
            .filter(|e| e.tid() == Some(tid))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, tid: u8, seq: u64) -> TraceEvent {
        TraceEvent::Fetch {
            cycle,
            tid: Tid(tid),
            seq,
            kind: OpKind::IntAlu,
            wrong_path: false,
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.push(ev(i, 0, i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded, 5);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn per_thread_filter() {
        let mut t = TraceBuffer::new(10);
        t.push(ev(0, 0, 0));
        t.push(ev(1, 1, 0));
        t.push(ev(2, 0, 1));
        t.push(TraceEvent::PolicySwitch {
            cycle: 3,
            from: 0,
            to: 1,
        });
        assert_eq!(t.for_thread(Tid(0)).len(), 2);
        assert_eq!(t.for_thread(Tid(1)).len(), 1);
        assert!(t.for_thread(Tid(2)).is_empty());
    }

    #[test]
    fn machine_wide_events_have_no_tid() {
        let ev = TraceEvent::PolicySwitch {
            cycle: 7,
            from: 0,
            to: 9,
        };
        assert_eq!(ev.tid(), None);
        assert_eq!(ev.cycle(), 7);
    }

    #[test]
    fn events_round_trip_through_json() {
        let evs = [
            ev(5, 2, 11),
            TraceEvent::Squash {
                cycle: 6,
                tid: Tid(1),
                after_seq: 3,
                victims: 4,
            },
            TraceEvent::Flush {
                cycle: 7,
                tid: Tid(0),
                victims: 2,
            },
            TraceEvent::CacheMiss {
                cycle: 8,
                tid: Tid(3),
                addr: 0xABCD,
                level: MissLevel::L1D,
                rot: 1,
            },
            TraceEvent::PolicySwitch {
                cycle: 9,
                from: 0,
                to: 4,
            },
        ];
        for e in evs {
            let text = serde::json::to_string(&e);
            let back: TraceEvent = serde::json::from_str(&text).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    #[should_panic]
    fn zero_cap_panics() {
        let _ = TraceBuffer::new(0);
    }
}
