//! Wrong-path micro-op synthesis.
//!
//! After a fetch-time mispredict the machine keeps fetching down the wrong
//! path until the branch resolves — those instructions occupy fetch slots,
//! queue entries, registers and functional units, and pollute the caches.
//! That waste is precisely the phenomenon BRCOUNT-style policies exist to
//! limit (paper §1), so it must be modeled, but its *content* is
//! meaningless: the [`WrongPathGen`] synthesizes plausible filler ops
//! deterministically from the thread seed.
//!
//! Wrong-path streams never contain syscalls (a squashed drain would
//! deadlock the drain protocol) and their branches never trigger nested
//! squashes (the machine ignores mispredicts on wrong-path ops).

use smt_isa::codec::{ByteReader, ByteWriter, CodecError};
use smt_isa::{ArchReg, BranchInfo, BranchKind, MemInfo, MicroOp, OpKind, RegClass};
use smt_workloads::SplitMix64;

/// Deterministic generator of wrong-path filler ops for one thread.
#[derive(Clone, Debug)]
pub struct WrongPathGen {
    rng: SplitMix64,
    /// Thread address base (so cache pollution lands in this thread's
    /// address space).
    addr_base: u64,
    /// Data-region mask for synthesized accesses.
    ws_mask: u64,
    /// Wider mask for the polluting minority of wrong-path loads.
    pollute_mask: u64,
    next_dst: u8,
}

impl WrongPathGen {
    pub fn new(seed: u64, addr_base: u64, ws_bytes: u64) -> Self {
        // Wrong-path code is nearby code: its data accesses share the hot
        // region, they don't stream the whole footprint.
        let hot = (ws_bytes.max(64).next_power_of_two() / 32).clamp(2 << 10, 8 << 10);
        let full = ws_bytes.max(64).next_power_of_two();
        WrongPathGen {
            rng: SplitMix64::new(SplitMix64::derive(seed, 0xDEAD)),
            addr_base,
            ws_mask: hot.min(full) - 1,
            pollute_mask: full.min(1 << 22) - 1,
            next_dst: 0,
        }
    }

    /// Serialize the full generator state for checkpointing.
    pub(crate) fn encode_into(&self, w: &mut ByteWriter) {
        w.u64(self.rng.state());
        w.u64(self.addr_base);
        w.u64(self.ws_mask);
        w.u64(self.pollute_mask);
        w.u8(self.next_dst);
    }

    /// Rebuild from [`Self::encode_into`] bytes.
    pub(crate) fn decode_from(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(WrongPathGen {
            rng: SplitMix64::from_state(r.u64()?),
            addr_base: r.u64()?,
            ws_mask: r.u64()?,
            pollute_mask: r.u64()?,
            next_dst: r.u8()?,
        })
    }

    /// Synthesize the op at wrong-path pc `pc`.
    pub fn next(&mut self, pc: u64) -> MicroOp {
        let r = self.rng.next_f64();
        self.next_dst = (self.next_dst + 1) % 24;
        let dst = ArchReg {
            class: RegClass::Int,
            idx: 2 + self.next_dst,
        };
        let src = ArchReg {
            class: RegClass::Int,
            idx: 2 + (self.next_dst + 11) % 24,
        };
        if r < 0.55 {
            MicroOp {
                kind: OpKind::IntAlu,
                pc,
                dst: Some(dst),
                src1: Some(src),
                src2: None,
                mem: None,
                branch: None,
            }
        } else if r < 0.75 {
            // Most wrong-path loads touch hot data, but a third wander off
            // into the wider footprint and genuinely pollute the caches.
            let addr = if self.rng.next_f64() < 0.33 {
                self.addr_base | (self.rng.next_u64() & self.pollute_mask & !7)
            } else {
                self.addr_base | (self.rng.next_u64() & self.ws_mask & !7)
            };
            MicroOp {
                kind: OpKind::Load,
                pc,
                dst: Some(dst),
                src1: Some(src),
                src2: None,
                mem: Some(MemInfo { addr, size: 8 }),
                branch: None,
            }
        } else if r < 0.83 {
            let addr = self.addr_base | (self.rng.next_u64() & self.ws_mask & !7);
            MicroOp {
                kind: OpKind::Store,
                pc,
                dst: None,
                src1: Some(src),
                src2: None,
                mem: Some(MemInfo { addr, size: 8 }),
                branch: None,
            }
        } else if r < 0.93 {
            let taken = self.rng.next_u64() & 1 == 0;
            MicroOp {
                kind: OpKind::Branch,
                pc,
                dst: None,
                src1: Some(src),
                src2: None,
                mem: None,
                branch: Some(BranchInfo {
                    kind: BranchKind::Conditional,
                    taken,
                    target: pc + 32,
                }),
            }
        } else {
            MicroOp {
                kind: OpKind::IntAlu,
                pc,
                dst: Some(dst),
                src1: None,
                src2: None,
                mem: None,
                branch: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_emits_syscalls() {
        let mut g = WrongPathGen::new(1, 1 << 40, 1 << 16);
        for pc in 0..20_000u64 {
            let op = g.next((1 << 40) | (pc * 4));
            assert_ne!(op.kind, OpKind::Syscall);
            assert!(op.is_well_formed());
        }
    }

    #[test]
    fn deterministic() {
        let mut a = WrongPathGen::new(5, 0, 4096);
        let mut b = WrongPathGen::new(5, 0, 4096);
        for pc in 0..1000u64 {
            assert_eq!(a.next(pc * 4), b.next(pc * 4));
        }
    }

    #[test]
    fn addresses_within_thread_region() {
        let base = 3u64 << 40;
        let mut g = WrongPathGen::new(9, base, 1 << 20);
        for pc in 0..5_000u64 {
            if let Some(m) = g.next(base + pc * 4).mem {
                assert_eq!(m.addr & base, base);
                assert!((m.addr & !base) <= (1 << 20));
            }
        }
    }
}
