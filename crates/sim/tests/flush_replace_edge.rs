//! Edge cases of `flush_thread` / `replace_thread`.
//!
//! These two entry points are the job-scheduler face of the machine and
//! the only operations that tear a thread's state out of the shared
//! structures wholesale. The hot-path rewrite moved that teardown from
//! whole-queue `retain` scans to per-thread index surgery, so each corner
//! here is exercised against the full invariant check: flushing in the
//! shadow of an in-flight mispredict, flushing mid-drain, replacing with
//! an empty-ish stream, and back-to-back replacements within one quantum.

use smt_isa::{AppProfile, Tid};
use smt_sim::{RoundRobin, SimConfig, SmtMachine};
use smt_workloads::UopStream;
use std::sync::Arc;

fn stream(seed: u64, tid: usize) -> UopStream {
    UopStream::new(
        Arc::new(AppProfile::builder("t").build()),
        seed,
        smt_workloads::thread_addr_base(tid),
    )
}

fn branchy_stream(seed: u64, tid: usize) -> UopStream {
    UopStream::new(
        Arc::new(smt_workloads::app("gcc")),
        seed,
        smt_workloads::thread_addr_base(tid),
    )
}

fn machine(n: usize, seed: u64) -> SmtMachine {
    let cfg = SimConfig::with_threads(n);
    let streams = (0..n).map(|i| stream(seed + i as u64, i)).collect();
    SmtMachine::new(cfg, streams)
}

/// Flush a thread at every cycle offset across a window that includes
/// mispredict squashes — the "flush mid-squash" interleaving. Whatever
/// state the squash machinery left (wrong-path fetch, redirect stalls,
/// partially drained queues), the flush must fully reclaim it.
#[test]
fn flush_lands_on_every_cycle_around_squashes() {
    // Branchy thread 0 guarantees squash traffic in the probed window.
    let cfg = SimConfig::with_threads(2);
    let mk = || {
        let streams = vec![branchy_stream(21, 0), stream(22, 1)];
        SmtMachine::new(cfg.clone(), streams)
    };
    // Confirm the window actually contains squashes (else the test probes
    // nothing).
    let mut probe = mk();
    probe.run(600, &mut RoundRobin);
    assert!(probe.global().squashes > 0, "window has no squash traffic");
    for offset in 0..40u64 {
        let mut m = mk();
        m.run(500 + offset, &mut RoundRobin);
        m.flush_thread(Tid(0));
        m.check_invariants();
        assert_eq!(
            m.counters(Tid(0)).front_end_occ,
            0,
            "flush left front-end residue at offset {offset}"
        );
        // The machine keeps running and the flushed thread refills.
        m.run(2_000, &mut RoundRobin);
        m.check_invariants();
        assert!(
            m.counters(Tid(0)).fetched > 0,
            "flushed thread never refetched at offset {offset}"
        );
    }
}

/// Flush the thread that owns the pending syscall while the machine is
/// draining for it: the drain FIFO entry must go with the thread, and the
/// machine must resume fetching for everyone else.
#[test]
fn flush_mid_drain_releases_the_machine() {
    let p = AppProfile::builder("sys").syscall_per_muop(300.0).build();
    let streams = vec![
        UopStream::new(Arc::new(p), 8, smt_workloads::thread_addr_base(0)),
        stream(9, 1),
    ];
    let mut m = SmtMachine::new(SimConfig::with_threads(2), streams);
    // Run until a drain is actually in progress.
    let mut draining = false;
    for _ in 0..30_000 {
        m.step(&mut RoundRobin);
        if m.global().syscall_drain_cycles > 0 {
            draining = true;
            break;
        }
    }
    assert!(draining, "no syscall drain ever started");
    m.flush_thread(Tid(0));
    m.check_invariants();
    let before = m.counters(Tid(1)).committed;
    m.run(5_000, &mut RoundRobin);
    m.check_invariants();
    assert!(
        m.counters(Tid(1)).committed > before + 1_000,
        "machine stayed wedged after flushing the syscall owner"
    );
}

/// replace_thread with a fresh stream resets the job-scoped counters,
/// honors the switch penalty, and leaves all shared structures clean.
#[test]
fn replace_resets_counters_and_blocks_fetch_for_penalty() {
    let mut m = machine(2, 31);
    m.run(3_000, &mut RoundRobin);
    assert!(m.counters(Tid(0)).committed > 0);
    let cycle = m.cycle();
    let penalty = 200;
    m.replace_thread(Tid(0), stream(777, 0), penalty);
    m.check_invariants();
    assert_eq!(m.counters(Tid(0)).committed, 0, "job counters must reset");
    assert_eq!(m.counters(Tid(0)).fetched, 0);
    // During the penalty the thread fetches nothing…
    m.run(penalty - 1, &mut RoundRobin);
    assert_eq!(
        m.counters(Tid(0)).fetched,
        0,
        "fetched during the switch penalty"
    );
    // …after it, it runs.
    m.run(3_000, &mut RoundRobin);
    m.check_invariants();
    assert!(
        m.counters(Tid(0)).fetched > 0,
        "replacement job never started (penalty began at cycle {cycle})"
    );
    assert!(m.counters(Tid(0)).committed > 0);
}

/// Back-to-back replacements within a single quantum — a scheduler
/// thrashing one context — must each leave a consistent machine, and the
/// *last* job must be the one that ends up running.
#[test]
fn back_to_back_replacements_within_one_quantum() {
    let mut m = machine(4, 41);
    m.run(2_000, &mut RoundRobin);
    let warmup: Vec<u64> = (0..4).map(|t| m.counters(Tid(t)).committed).collect();
    for k in 0..5u64 {
        m.replace_thread(Tid(2), stream(1_000 + k, 2), 10);
        m.check_invariants();
        // A few cycles between replacements — far less than a quantum,
        // and sometimes less than the penalty itself.
        m.run(3 + k, &mut RoundRobin);
        m.check_invariants();
    }
    assert_eq!(
        m.counters(Tid(2)).committed,
        0,
        "no replacement's penalty elapsed, nothing may have committed"
    );
    m.run(5_000, &mut RoundRobin);
    m.check_invariants();
    assert!(
        m.counters(Tid(2)).committed > 0,
        "final replacement job never ran"
    );
    // The other threads were never disturbed: each kept committing at
    // (at least) its warmup pace through the thrash and afterwards.
    for t in [0u8, 1, 3] {
        assert!(
            m.counters(Tid(t)).committed > 2 * warmup[t as usize],
            "bystander {t} starved: {} vs warmup {}",
            m.counters(Tid(t)).committed,
            warmup[t as usize]
        );
    }
}

/// Replacing with a stream that immediately syscalls (the closest thing
/// to an "empty" stream the generator produces) must not wedge the
/// machine: the drain executes and everyone moves on.
#[test]
fn replace_with_immediately_draining_stream() {
    let mut m = machine(2, 51);
    m.run(2_000, &mut RoundRobin);
    // 20k syscalls per million micro-ops — one drain every ~50 uops.
    let p = AppProfile::builder("sysheavy")
        .syscall_per_muop(20_000.0)
        .build();
    let s = UopStream::new(Arc::new(p), 5, smt_workloads::thread_addr_base(0));
    m.replace_thread(Tid(0), s, 0);
    m.check_invariants();
    m.run(20_000, &mut RoundRobin);
    m.check_invariants();
    assert!(
        m.counters(Tid(0)).syscalls > 0,
        "syscall-heavy replacement never drained"
    );
    assert!(
        m.counters(Tid(1)).committed > 1_000,
        "bystander starved by drain-heavy neighbor"
    );
}

/// Flushing a thread twice in a row is a no-op the second time; flushing
/// all threads empties every shared structure.
#[test]
fn double_flush_and_flush_all() {
    let mut m = machine(4, 61);
    m.run(3_000, &mut RoundRobin);
    m.flush_thread(Tid(1));
    m.check_invariants();
    m.flush_thread(Tid(1));
    m.check_invariants();
    for t in 0..4u8 {
        m.flush_thread(Tid(t));
    }
    m.check_invariants();
    assert_eq!(m.total_inflight(), 0, "flush-all left in-flight ops");
    // And the machine restarts from empty.
    let before = m.total_committed();
    m.run(3_000, &mut RoundRobin);
    m.check_invariants();
    assert!(m.total_committed() > before, "machine dead after flush-all");
}
