//! Machine microtests: scripted op sequences pinning down the exact
//! behaviour of individual mechanisms (forwarding, unpipelined dividers,
//! register exhaustion, fetch breaks, the syscall drain).

use smt_isa::{AppProfile, ArchReg, BranchInfo, BranchKind, MemInfo, MicroOp, OpKind, Tid};
use smt_sim::{FetchCause, MultiCoreMachine, RoundRobin, SimConfig, SmtMachine};
use smt_workloads::UopStream;
use std::sync::Arc;

const BASE: u64 = 1 << 40;

fn profile() -> Arc<AppProfile> {
    Arc::new(AppProfile::builder("micro").build())
}

fn machine_with(script: Vec<MicroOp>, cfg: SimConfig) -> SmtMachine {
    let stream = UopStream::scripted(profile(), BASE, script);
    SmtMachine::new(cfg, vec![stream])
}

fn alu(pc: u64, dst: u8, src: Option<u8>) -> MicroOp {
    MicroOp {
        kind: OpKind::IntAlu,
        pc: BASE | pc,
        dst: Some(ArchReg::int(dst)),
        src1: src.map(ArchReg::int),
        src2: None,
        mem: None,
        branch: None,
    }
}

fn load(pc: u64, dst: u8, addr: u64) -> MicroOp {
    MicroOp {
        kind: OpKind::Load,
        pc: BASE | pc,
        dst: Some(ArchReg::int(dst)),
        src1: None,
        src2: None,
        mem: Some(MemInfo {
            addr: BASE | addr,
            size: 8,
        }),
        branch: None,
    }
}

fn store(pc: u64, addr: u64) -> MicroOp {
    MicroOp {
        kind: OpKind::Store,
        pc: BASE | pc,
        dst: None,
        src1: None,
        src2: None,
        mem: Some(MemInfo {
            addr: BASE | addr,
            size: 8,
        }),
        branch: None,
    }
}

#[test]
fn store_to_load_forwarding_skips_the_cache() {
    // A store and a dependent-address load to the same word, far from any
    // cached line: with forwarding, the load never touches the D-cache.
    let script = vec![store(0x0, 0x9000), load(0x4, 3, 0x9000)];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    m.run(2_000, &mut RoundRobin);
    let c = m.counters(Tid(0));
    assert!(c.committed > 100, "no progress");
    // Every load pairs with an immediately older same-address store, so
    // load-side L1D misses can only come from the stores themselves
    // (write-allocate) — the first touch — not from the loads.
    assert!(
        c.l1d_misses <= c.stores / 8 + 2,
        "forwarding not effective: {} misses for {} stores",
        c.l1d_misses,
        c.stores
    );
}

#[test]
fn unpipelined_divider_serializes() {
    // Back-to-back independent divides vs back-to-back independent ALUs:
    // the single divider must make the div script far slower.
    let divs: Vec<MicroOp> = (0..4u8)
        .map(|i| MicroOp {
            kind: OpKind::IntDiv,
            ..alu(4 * i as u64, 10 + i, None)
        })
        .collect();
    let alus: Vec<MicroOp> = (0..4u8).map(|i| alu(4 * i as u64, 10 + i, None)).collect();
    let mut md = machine_with(divs, SimConfig::with_threads(1));
    let mut ma = machine_with(alus, SimConfig::with_threads(1));
    md.run(4_000, &mut RoundRobin);
    ma.run(4_000, &mut RoundRobin);
    let div_ipc = md.aggregate_ipc();
    let alu_ipc = ma.aggregate_ipc();
    assert!(
        alu_ipc > 5.0 * div_ipc,
        "divider not serializing: div {div_ipc:.2} vs alu {alu_ipc:.2}"
    );
    // The divider bounds throughput at ~1 per lat_int_div cycles.
    let max_div_ipc = 1.0 / md.config().lat_int_div as f64;
    assert!(
        div_ipc <= max_div_ipc * 1.2,
        "div ipc {div_ipc} above divider bound"
    );
}

#[test]
fn register_exhaustion_throttles_but_never_deadlocks() {
    let mut cfg = SimConfig::with_threads(1);
    cfg.extra_phys_int = 4; // brutally small rename pool
    let script: Vec<MicroOp> = (0..8u8).map(|i| alu(4 * i as u64, 10 + i, None)).collect();
    let mut m = machine_with(script, cfg);
    m.run(3_000, &mut RoundRobin);
    assert!(
        m.counters(Tid(0)).committed > 500,
        "deadlocked on tiny register file"
    );
    m.check_invariants();
}

#[test]
fn tiny_lsq_throttles_but_never_deadlocks() {
    let mut cfg = SimConfig::with_threads(1);
    cfg.lsq_size = 2;
    let script = vec![load(0x0, 3, 0x100), store(0x4, 0x200), load(0x8, 4, 0x300)];
    let mut m = machine_with(script, cfg);
    m.run(3_000, &mut RoundRobin);
    assert!(m.counters(Tid(0)).committed > 300, "deadlocked on tiny LSQ");
    m.check_invariants();
}

#[test]
fn dependent_chain_runs_at_one_ipc() {
    // Each op reads the previous op's destination: a pure serial chain.
    // With single-cycle ALUs the machine must settle at ~1 IPC, proving
    // that rename reconstructs the chain (no false independence).
    let script: Vec<MicroOp> = (0..8u8)
        .map(|i| alu(4 * i as u64, 10 + (i + 1) % 8, Some(10 + i)))
        .collect();
    let mut m = machine_with(script, SimConfig::with_threads(1));
    m.run(500, &mut RoundRobin); // warm
    let c0 = m.total_committed();
    let cy0 = m.cycle();
    m.run(2_000, &mut RoundRobin);
    let ipc = (m.total_committed() - c0) as f64 / (m.cycle() - cy0) as f64;
    assert!((0.8..=1.1).contains(&ipc), "serial chain ran at {ipc} IPC");
}

#[test]
fn independent_ops_exceed_serial_throughput() {
    let script: Vec<MicroOp> = (0..8u8).map(|i| alu(4 * i as u64, 10 + i, None)).collect();
    let mut m = machine_with(script, SimConfig::with_threads(1));
    m.run(500, &mut RoundRobin);
    let c0 = m.total_committed();
    let cy0 = m.cycle();
    m.run(2_000, &mut RoundRobin);
    let ipc = (m.total_committed() - c0) as f64 / (m.cycle() - cy0) as f64;
    assert!(ipc > 2.0, "independent ALUs only reached {ipc} IPC");
}

#[test]
fn taken_branch_ends_the_fetch_group() {
    // An always-taken self-loop branch: fetch can take at most one branch
    // per cycle per thread, so fetched-per-cycle stays near 1.
    let br = MicroOp {
        kind: OpKind::Branch,
        pc: BASE,
        dst: None,
        src1: None,
        src2: None,
        mem: None,
        branch: Some(BranchInfo {
            kind: BranchKind::Unconditional,
            taken: true,
            target: BASE,
        }),
    };
    let mut m = machine_with(vec![br], SimConfig::with_threads(1));
    m.run(1_000, &mut RoundRobin);
    let c = m.counters(Tid(0));
    let per_cycle = (c.fetched + c.wrongpath_fetched) as f64 / m.cycle() as f64;
    assert!(
        per_cycle <= 1.05,
        "fetched {per_cycle} branches/cycle past a taken branch"
    );
}

#[test]
fn syscall_drains_and_costs_its_latency() {
    let script = vec![
        alu(0x0, 10, None),
        MicroOp {
            kind: OpKind::Syscall,
            ..MicroOp::nop(BASE | 0x4)
        },
        alu(0x8, 11, None),
    ];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    m.run(5_000, &mut RoundRobin);
    let c = m.counters(Tid(0));
    assert!(c.syscalls >= 1, "no syscall retired");
    // Each script cycle (3 ops) costs at least syscall_latency cycles, so
    // IPC is bounded by 3 / syscall_latency.
    let bound = 3.0 / m.config().syscall_latency as f64;
    assert!(
        m.aggregate_ipc() < bound * 2.0,
        "syscalls too cheap: {} vs bound {bound}",
        m.aggregate_ipc()
    );
    assert!(m.global().syscall_drain_cycles > m.cycle() / 2);
}

#[test]
fn flush_thread_releases_everything() {
    let script = vec![
        load(0x0, 3, 0x5000),
        alu(0x4, 4, Some(3)),
        store(0x8, 0x6000),
    ];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    m.run(100, &mut RoundRobin);
    assert!(m.total_inflight() > 0);
    m.flush_thread(Tid(0));
    assert_eq!(m.total_inflight(), 0);
    m.check_invariants();
    // And the machine keeps running afterwards.
    m.run(500, &mut RoundRobin);
    assert!(m.total_committed() > 0);
}

#[test]
fn replace_thread_swaps_the_job() {
    let script = vec![alu(0x0, 10, None)];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    m.run(500, &mut RoundRobin);
    let committed_before = m.counters(Tid(0)).committed;
    assert!(committed_before > 0);
    let new_stream = UopStream::scripted(profile(), BASE, vec![load(0x100, 5, 0x7000)]);
    m.replace_thread(Tid(0), new_stream, 100);
    assert_eq!(m.counters(Tid(0)).committed, 0, "new job starts fresh");
    m.run(1_000, &mut RoundRobin);
    let c = m.counters(Tid(0));
    assert!(c.loads > 0, "new job's loads must run");
    m.check_invariants();
}

#[test]
fn trace_records_full_op_lifecycles() {
    use smt_sim::TraceEvent;
    let script = vec![alu(0x0, 10, None), load(0x4, 11, 0x2000)];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    m.enable_trace(4096);
    m.run(200, &mut RoundRobin);
    let trace = m.trace().expect("enabled");
    assert!(!trace.is_empty());
    // Some op must appear with all four lifecycle stages in order.
    let mut stages_of_seq0 = Vec::new();
    for e in trace.events() {
        match *e {
            TraceEvent::Fetch { seq: 0, .. } => stages_of_seq0.push("F"),
            TraceEvent::Dispatch { seq: 0, .. } => stages_of_seq0.push("D"),
            TraceEvent::Issue { seq: 0, .. } => stages_of_seq0.push("I"),
            TraceEvent::Complete { seq: 0, .. } => stages_of_seq0.push("X"),
            TraceEvent::Commit { seq: 0, .. } => stages_of_seq0.push("C"),
            _ => {}
        }
    }
    assert_eq!(stages_of_seq0, vec!["F", "D", "I", "X", "C"]);
    // Event cycles are non-decreasing.
    let cycles: Vec<u64> = trace.events().map(|e| e.cycle()).collect();
    assert!(
        cycles.windows(2).all(|w| w[0] <= w[1]),
        "trace out of order"
    );
}

#[test]
fn trace_is_off_by_default_and_removable() {
    let script = vec![alu(0x0, 10, None)];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    assert!(m.trace().is_none());
    m.run(50, &mut RoundRobin);
    m.enable_trace(16);
    m.run(50, &mut RoundRobin);
    let buf = m.disable_trace().expect("was enabled");
    assert!(buf.recorded > 0);
    assert!(m.trace().is_none());
    m.run(50, &mut RoundRobin); // still healthy
    m.check_invariants();
}

#[test]
fn chooser_tolerates_empty_candidate_set() {
    use smt_sim::FetchChooser as _;
    // Direct contract: prioritizing zero candidates must not panic (the
    // cycle-modulo rotation in RoundRobin divides by the candidate count)
    // and must leave the vector empty.
    let mut rr = RoundRobin;
    let mut none: Vec<smt_sim::PolicyView> = Vec::new();
    for cycle in [0, 1, 17, u64::MAX] {
        rr.prioritize(cycle, &mut none);
        assert!(none.is_empty());
    }
    let mut seen_empty = false;
    let mut fc = smt_sim::FnChooser(|_cycle: u64, v: &mut Vec<smt_sim::PolicyView>| {
        seen_empty |= v.is_empty();
    });
    fc.prioritize(3, &mut Vec::new());
    assert!(seen_empty, "closure chooser must still be consulted");

    // Machine contract: with every thread's fetch disabled the per-cycle
    // candidate set is empty; the machine must keep cycling, drain its
    // in-flight work, and resume cleanly when fetch is re-enabled.
    let script = vec![alu(0x0, 10, None), load(0x4, 11, 0x3000)];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    m.run(100, &mut RoundRobin);
    m.set_fetch_enabled(Tid(0), false);
    let fetched_at_disable = m.counters(Tid(0)).fetched;
    m.run(500, &mut RoundRobin);
    m.check_invariants();
    assert_eq!(
        m.counters(Tid(0)).fetched,
        fetched_at_disable,
        "nothing may be fetched while the candidate set is empty"
    );
    assert_eq!(m.total_inflight(), 0, "in-flight work must drain");
    let committed_stalled = m.total_committed();
    m.set_fetch_enabled(Tid(0), true);
    m.run(500, &mut RoundRobin);
    m.check_invariants();
    assert!(
        m.total_committed() > committed_stalled,
        "fetch re-enable must restore progress"
    );
}

// ---------------------------------------------------------------------
// readiness tracking: the per-op pending counters vs the search oracle
// ---------------------------------------------------------------------

fn div_op(pc: u64, dst: u8) -> MicroOp {
    MicroOp {
        kind: OpKind::IntDiv,
        ..alu(pc, dst, None)
    }
}

#[test]
fn wake_fires_the_cycle_the_producer_completes() {
    // An unpipelined divide and its dependent consumer, looping. The
    // consumer dispatches long before the divide completes, so it sits
    // dep-blocked in the int queue with a non-zero pending counter. The
    // wake must land in the *same cycle* the producer completes: stepping
    // one cycle at a time, there may never be a cycle where the search
    // oracle says ready while the counter still reads pending > 0 (a late
    // wake), nor the reverse (an early or lost wake).
    let script = vec![div_op(0x0, 10), alu(0x4, 11, Some(10))];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    let mut blocked_seen = 0u64;
    for _ in 0..1_500 {
        m.step(&mut RoundRobin);
        // Consumers are the odd seqs; each depends on exactly seq - 1
        // (in-order fetch, no branches, so seqs follow the script).
        let lo = m.total_committed();
        for seq in lo..lo + 160 {
            if seq % 2 != 1 {
                continue;
            }
            if let Some(pending) = m.queued_pending(Tid(0), seq) {
                assert_eq!(
                    pending == 0,
                    m.deps_ready_search(Tid(0), &[Some(seq - 1), None]),
                    "pending {pending} disagrees with the search oracle \
                     for seq {seq} at cycle {}",
                    m.cycle()
                );
                if pending > 0 {
                    blocked_seen += 1;
                }
            }
        }
    }
    assert!(blocked_seen > 10, "consumer was never observed dep-blocked");
    assert!(m.counters(Tid(0)).committed > 50, "divide chain wedged");
    m.check_invariants();
}

#[test]
fn squash_during_producer_flight_keeps_readiness_coherent() {
    // A mispredicting conditional loop branch rides with an unpipelined
    // divide: wrong-path ops fetched past the branch rename their sources
    // onto the still-executing divider (the wrong-path generator sources
    // int regs 2..26, which covers r10) and register wake nodes on its
    // chain; the squash then removes those waiters while the producer
    // survives. When the divide finally completes it must revalidate each
    // waiter's queue slot instead of decrementing a squashed (possibly
    // reused) entry. check_invariants() recounts every pending counter
    // against the search oracle and audits the wake arena every cycle.
    // Both branch entries share one PC but alternate direction, so the
    // weakly-taken-initialized predictor keeps mispredicting for a while.
    let branch = |taken| MicroOp {
        kind: OpKind::Branch,
        pc: BASE | 0x8,
        dst: None,
        src1: None,
        src2: None,
        mem: None,
        branch: Some(BranchInfo {
            kind: BranchKind::Conditional,
            taken,
            target: BASE,
        }),
    };
    let script = vec![
        div_op(0x0, 10),
        alu(0x4, 11, Some(10)),
        branch(true),
        div_op(0x10, 10),
        alu(0x14, 11, Some(10)),
        branch(false),
    ];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    for _ in 0..2_000 {
        m.step(&mut RoundRobin);
        m.check_invariants();
    }
    let c = m.counters(Tid(0));
    assert!(c.mispredicts > 0, "loop branch never mispredicted");
    assert!(c.squashes > 0, "mispredicts must squash");
    assert!(c.wrongpath_fetched > 0, "wrong-path fetch must engage");
    assert!(
        c.committed > 100,
        "no progress after squash churn: {} committed",
        c.committed
    );
}

#[test]
fn syscall_drain_waits_out_dep_blocked_ops() {
    // Divide producer, dep-blocked consumer, syscall, trailing op. The
    // fetched syscall puts the machine in drain mode while the consumer is
    // still waiting on the divide (the front end runs ~20 cycles ahead of
    // the unpipelined divider), but the drain may only execute once
    // nothing else is in flight — so every retired syscall proves the
    // dep-blocked consumer was woken and completed *during* the drain. A
    // lost wake would deadlock the drain forever.
    let script = vec![
        div_op(0x0, 10),
        alu(0x4, 11, Some(10)),
        MicroOp {
            kind: OpKind::Syscall,
            ..MicroOp::nop(BASE | 0x8)
        },
        alu(0xC, 12, None),
    ];
    let mut m = machine_with(script, SimConfig::with_threads(1));
    let mut blocked_seen = 0u64;
    for _ in 0..4_000 {
        m.step(&mut RoundRobin);
        m.check_invariants();
        // Consumers are the seqs ≡ 1 (mod 4), each depending on seq - 1.
        let lo = m.total_committed();
        for seq in lo..lo + 64 {
            if seq % 4 != 1 {
                continue;
            }
            if let Some(pending) = m.queued_pending(Tid(0), seq) {
                assert_eq!(
                    pending == 0,
                    m.deps_ready_search(Tid(0), &[Some(seq - 1), None]),
                    "pending {pending} disagrees with the search oracle \
                     for seq {seq} during drain"
                );
                if pending > 0 {
                    blocked_seen += 1;
                }
            }
        }
    }
    let c = m.counters(Tid(0));
    assert!(blocked_seen > 0, "consumer never dep-blocked");
    assert!(c.syscalls >= 2, "drain never retired a syscall");
    assert!(
        c.committed >= 8,
        "drain deadlocked on the dep-blocked consumer: {} committed",
        c.committed
    );
    assert!(m.global().syscall_drain_cycles > 0);
}

#[test]
fn wrongpath_squash_survives_quantum_boundary_flush() {
    use smt_sim::FetchChooser as _;
    // A mispredict-heavy random stream (50/50 branch bias defeats the
    // predictor) keeps wrong-path fetch and squash recovery continuously
    // active; chopping the run into odd-sized "quanta" with a full flush
    // at every boundary must never catch the machine in an inconsistent
    // squash state.
    let profile = Arc::new(
        AppProfile::builder("wrongpath-heavy")
            .branch_frac(0.25)
            .branch_bias(0.5)
            .build(),
    );
    let stream = UopStream::new(profile, 7, smt_workloads::thread_addr_base(0));
    let mut m = SmtMachine::new(SimConfig::with_threads(1), vec![stream]);
    let mut rr = RoundRobin;
    for quantum in 0..8u64 {
        // Odd lengths so boundaries land at arbitrary pipeline phases.
        m.run(997 + quantum, &mut rr);
        m.flush_thread(Tid(0));
        m.check_invariants();
        assert_eq!(m.total_inflight(), 0, "boundary flush must empty the pipe");
        // The chooser still sees a consistent view right after the flush.
        let mut views = Vec::new();
        m.views_into(&mut views);
        rr.prioritize(m.cycle(), &mut views);
        assert_eq!(views.len(), 1);
    }
    let c = m.counters(Tid(0));
    assert!(c.committed > 100, "no progress: {} committed", c.committed);
    assert!(c.mispredicts > 0, "stream must mispredict");
    assert!(c.squashes > 0, "mispredicts must squash");
    assert!(c.wrongpath_fetched > 0, "wrong-path fetch must engage");
    // Wrong-path ops are never committed: committed ops all came from the
    // right path, so totals stay coherent after eight boundary flushes.
    assert!(c.fetched >= c.committed);
    m.run(1_000, &mut rr);
    m.check_invariants();
}

// ---------------------------------------------------------------------------
// Cross-core migration edge cases (MultiCoreMachine).
// ---------------------------------------------------------------------------

fn synth(seed: u64, t: usize) -> UopStream {
    UopStream::new(profile(), seed, smt_workloads::thread_addr_base(t))
}

/// Two single-context cores hosting one global thread on core 0; the spare
/// slot on core 1 starts parked and is the migration target.
fn two_cores_one_thread(script: Vec<MicroOp>, penalty: u64) -> MultiCoreMachine {
    let cfg = SimConfig::with_threads(1);
    let core0 = SmtMachine::new(
        cfg.clone(),
        vec![UopStream::scripted(profile(), BASE, script)],
    );
    let core1 = SmtMachine::new(cfg, vec![synth(99, 1)]);
    MultiCoreMachine::from_cores(vec![core0, core1], vec![(0, 0)], penalty)
}

#[test]
fn migration_mid_syscall_drain_releases_the_drain() {
    // The script fetches a syscall behind a far-miss load, so the machine
    // sits in drain mode for the load's whole miss latency. Migrating the
    // thread away mid-drain must purge the pending syscall from the old
    // core — an empty core must not keep draining — while the thread
    // resumes (and still retires syscalls) on its new core.
    let script = vec![
        load(0x0, 3, 0x9000),
        MicroOp {
            kind: OpKind::Syscall,
            ..MicroOp::nop(BASE | 0x4)
        },
        alu(0x8, 10, None),
    ];
    let mut m = two_cores_one_thread(script, 0);
    let mut ch = [RoundRobin, RoundRobin];
    while m.core(0).global().syscall_drain_cycles == 0 {
        m.step(&mut ch);
        assert!(m.cycle() < 5_000, "drain never engaged");
    }
    let drained_before = m.core(0).global().syscall_drain_cycles;
    let committed_before = m.thread_counters(0).committed;
    let syscalls_before = m.thread_counters(0).syscalls;
    assert_eq!(m.apply_placement(&[1]), 1);
    m.check_invariants();
    assert_eq!(m.core(0).total_inflight(), 0, "migrate_out must flush");
    m.run(8_000, &mut ch);
    assert_eq!(
        m.core(0).global().syscall_drain_cycles,
        drained_before,
        "empty core kept draining after the syscall owner migrated away"
    );
    let c = m.thread_counters(0);
    assert!(
        c.committed > committed_before,
        "thread stalled after migration"
    );
    assert!(
        c.syscalls > syscalls_before,
        "migrated thread stopped retiring syscalls"
    );
    m.check_invariants();
}

#[test]
fn migration_with_wrongpath_ops_in_flight() {
    // A 50/50-bias branch-heavy stream keeps wrong-path fetch continuously
    // active; migrating at an arbitrary cycle must catch speculative ops in
    // flight, squash them cleanly, and carry the architectural counters to
    // the new core untouched.
    let profile = Arc::new(
        AppProfile::builder("wrongpath-heavy")
            .branch_frac(0.25)
            .branch_bias(0.5)
            .build(),
    );
    let cfg = SimConfig::with_threads(1);
    let core0 = SmtMachine::new(
        cfg.clone(),
        vec![UopStream::new(
            profile,
            7,
            smt_workloads::thread_addr_base(0),
        )],
    );
    let core1 = SmtMachine::new(cfg, vec![synth(8, 1)]);
    let mut m = MultiCoreMachine::from_cores(vec![core0, core1], vec![(0, 0)], 64);
    let mut ch = [RoundRobin, RoundRobin];
    m.run(997, &mut ch);
    assert!(
        m.thread_counters(0).wrongpath_fetched > 0,
        "stream must be fetching down the wrong path"
    );
    let before = m.thread_counters(0).clone();
    assert_eq!(m.apply_placement(&[1]), 1);
    m.check_invariants();
    assert_eq!(m.core(0).total_inflight(), 0, "wrong-path ops must squash");
    assert_eq!(
        *m.thread_counters(0),
        before,
        "architectural counters must travel unchanged"
    );
    m.run(3_000, &mut ch);
    assert!(m.thread_counters(0).committed > before.committed);
    m.check_invariants();
}

#[test]
fn migrating_the_same_thread_two_quanta_in_a_row_stacks_cleanly() {
    // Penalty longer than the inter-migration gap: the second migration
    // lands while the first cold-frontend penalty is still being served.
    // The stall must restart (not wedge), and fetch stays frozen across
    // both windows.
    let script: Vec<MicroOp> = (0..4u8).map(|i| alu(4 * i as u64, 10 + i, None)).collect();
    let mut m = two_cores_one_thread(script, 2_000);
    let mut ch = [RoundRobin, RoundRobin];
    m.run(200, &mut ch);
    let before = m.thread_counters(0).committed;
    assert!(before > 0);
    assert_eq!(m.apply_placement(&[1]), 1);
    m.run(500, &mut ch); // still inside the first penalty window
    assert_eq!(m.apply_placement(&[0]), 1); // second migration mid-penalty
    m.run(500, &mut ch); // still inside the restarted window
    assert_eq!(m.migrations(), &[2]);
    assert_eq!(
        m.thread_counters(0).committed,
        before,
        "committed during a cold-frontend penalty"
    );
    m.check_invariants();
    m.run(4_000, &mut ch); // well past cycle 1200 + 2000
    assert!(
        m.thread_counters(0).committed > before,
        "thread never resumed after back-to-back migrations"
    );
    m.check_invariants();
}

#[test]
fn allocation_can_empty_a_core_and_refill_it() {
    // Co-scheduling both threads onto core 0 leaves core 1 with no work:
    // it must keep cycling in lockstep (the shared-L2 rotation depends on
    // it) without draining or deadlocking, and refilling it later works.
    let cfg = SimConfig::with_threads(2);
    let core0 = SmtMachine::new(cfg.clone(), vec![synth(1, 0), synth(91, 2)]);
    let core1 = SmtMachine::new(cfg, vec![synth(92, 3), synth(2, 1)]);
    let mut m = MultiCoreMachine::from_cores(vec![core0, core1], vec![(0, 0), (1, 1)], 32);
    let mut ch = [RoundRobin, RoundRobin];
    m.run(500, &mut ch);
    assert_eq!(m.apply_placement(&[0, 0]), 1);
    m.check_invariants();
    assert_eq!(
        m.core(1).total_inflight(),
        0,
        "emptied core must be flushed"
    );
    let (c0, c1) = (
        m.thread_counters(0).committed,
        m.thread_counters(1).committed,
    );
    // The machine-global counter keeps counting across migrations, so the
    // emptied core's total freezes at whatever the departed thread left.
    let core1_frozen = m.core(1).total_committed();
    m.run(3_000, &mut ch);
    assert!(m.thread_counters(0).committed > c0, "thread 0 stalled");
    assert!(m.thread_counters(1).committed > c1, "thread 1 stalled");
    assert_eq!(
        m.core(1).cycle(),
        m.core(0).cycle(),
        "empty core fell out of lockstep"
    );
    assert_eq!(
        m.core(1).total_committed(),
        core1_frozen,
        "empty core committed ops"
    );
    // Refill the emptied core and keep going.
    assert_eq!(m.apply_placement(&[1, 0]), 1);
    let c0 = m.thread_counters(0).committed;
    m.run(3_000, &mut ch);
    assert!(m.thread_counters(0).committed > c0, "refilled core stalled");
    assert_eq!(m.migrations(), &[1, 1]);
    m.check_invariants();
}

#[test]
fn n_threads_on_one_core_matches_plain_smt_machine() {
    // The N=1 equivalence guarantee at microtest scale: wrapping a 4-thread
    // SmtMachine in MultiCoreMachine::single and stepping through odd-sized
    // chunks must reproduce the standalone machine's counters exactly.
    let cfg = SimConfig::with_threads(4);
    let streams: Vec<UopStream> = (0..4).map(|t| synth(3 + t as u64, t)).collect();
    let mut plain = SmtMachine::new(cfg.clone(), streams.clone());
    let mut wrapped = MultiCoreMachine::single(SmtMachine::new(cfg, streams));
    let mut ch = [RoundRobin];
    for chunk in [13u64, 101, 997, 1, 7, 400] {
        plain.run(chunk, &mut RoundRobin);
        wrapped.run(chunk, &mut ch);
        assert_eq!(
            plain.counter_snapshot(),
            wrapped.counter_snapshot(),
            "wrapper diverged from plain machine"
        );
    }
    assert!(plain.total_committed() > 0, "vacuous equivalence");
    plain.check_invariants();
    wrapped.check_invariants();
}

#[test]
fn migration_penalty_freezes_fetch_and_is_attributed() {
    // During the cold-frontend penalty the thread commits nothing (its
    // pipeline was flushed and fetch is held), and the attribution layer
    // charges the lost fetch slots to the dedicated Migration cause.
    let script: Vec<MicroOp> = (0..4u8).map(|i| alu(4 * i as u64, 10 + i, None)).collect();
    let mut m = two_cores_one_thread(script, 300);
    let mut ch = [RoundRobin, RoundRobin];
    m.run(500, &mut ch);
    let before = m.thread_counters(0).committed;
    assert_eq!(m.apply_placement(&[1]), 1);
    m.core_mut(1).enable_attr();
    m.run(300, &mut ch);
    assert_eq!(
        m.thread_counters(0).committed,
        before,
        "committed while the migration penalty held fetch"
    );
    let attr = m.core_mut(1).disable_attr().expect("attr was enabled");
    assert!(
        attr.stacks()[0].fetch_count(FetchCause::Migration) > 0,
        "penalty cycles not attributed to the migration cause"
    );
    m.run(2_000, &mut ch);
    assert!(
        m.thread_counters(0).committed > before,
        "thread never thawed after the penalty"
    );
    m.check_invariants();
}

// ---------------------------------------------------------------------------
// event-horizon fast-forward boundary cases
// ---------------------------------------------------------------------------
//
// The differential proptests (`proptest_skip.rs`) cover random chunkings;
// these microtests pin the exact boundary conditions the skip engine must
// get right, comparing a skip-enabled machine against a single-stepped
// twin with `MachineSnapshot` byte equality — the strongest check we have.

mod skip_boundaries {
    use super::*;
    use smt_sim::snapshot::MachineSnapshot;
    use smt_workloads::mix;

    /// A 1-thread memory-bound machine (mcf-like miss behaviour) whose
    /// run is mostly long D-miss stall windows — prime skip territory.
    fn memory_bound_pair(seed: u64) -> (SmtMachine, SmtMachine) {
        let streams = mix(13).take_threads(1, 1).streams(seed);
        let mut fast = SmtMachine::new(SimConfig::with_threads(1), streams);
        fast.set_skip_enabled(true);
        let mut slow = fast.clone();
        slow.set_skip_enabled(false);
        (fast, slow)
    }

    fn assert_bit_identical(fast: &SmtMachine, slow: &SmtMachine, what: &str) {
        assert_eq!(fast.cycle(), slow.cycle(), "{what}: cycles diverged");
        assert_eq!(
            MachineSnapshot::capture(fast).to_bytes(),
            MachineSnapshot::capture(slow).to_bytes(),
            "{what}: states diverged"
        );
    }

    /// Sweep a run-boundary across the first 400 cycles: for every split
    /// point — including the ones landing *exactly* on a wake cycle (a
    /// completion deadline, the end of a skip window) — two-chunk
    /// skipped execution equals one-chunk single-stepped execution.
    #[test]
    fn wake_landing_exactly_on_quantum_boundary() {
        let mut engaged = false;
        for boundary in (1..400).step_by(1) {
            let (mut fast, mut slow) = memory_bound_pair(7);
            fast.run(boundary, &mut RoundRobin);
            fast.run(600 - boundary, &mut RoundRobin);
            slow.run(600, &mut RoundRobin);
            assert_bit_identical(&fast, &slow, "boundary sweep");
            engaged |= fast.skipped_cycles() > 0;
        }
        assert!(engaged, "no split point ever skipped — vacuous sweep");
    }

    /// A flush arriving while the machine sits mid-stall-window: the
    /// skip must not have advanced past the quantum end where the flush
    /// lands, for any alignment of the flush within the window.
    #[test]
    fn flush_arriving_mid_skip_window() {
        for at in (1..400).step_by(7) {
            let (mut fast, mut slow) = memory_bound_pair(11);
            fast.run(at, &mut RoundRobin);
            slow.run(at, &mut RoundRobin);
            fast.flush_thread(Tid(0));
            slow.flush_thread(Tid(0));
            fast.run(800, &mut RoundRobin);
            slow.run(800, &mut RoundRobin);
            assert_bit_identical(&fast, &slow, "mid-window flush");
        }
    }

    /// Degenerate horizons: single-cycle run chunks force every skip to
    /// clamp at `end = now + 1`, and stall windows whose next event is
    /// one cycle ahead produce minimal (length-1) skips. Both must
    /// degrade exactly to stepping.
    #[test]
    fn zero_length_horizon_chunks() {
        let (mut fast, mut slow) = memory_bound_pair(13);
        for _ in 0..600 {
            fast.run(1, &mut RoundRobin);
            slow.run(1, &mut RoundRobin);
        }
        assert_bit_identical(&fast, &slow, "1-cycle chunks");
    }

    /// The all-threads-drained syscall case: the drain empties the
    /// pipeline, then the syscall executes for `syscall_latency` cycles
    /// — a pure stall window bounded by the completion deadline that the
    /// skip engine must fast-forward through and account identically
    /// (drain counters included).
    #[test]
    fn syscall_drain_window_is_skipped_exactly() {
        let script = vec![
            alu(0x0, 10, None),
            MicroOp {
                kind: OpKind::Syscall,
                ..alu(0x4, 11, None)
            },
            alu(0x8, 12, None),
        ];
        let cfg = SimConfig::with_threads(1);
        let mut fast = machine_with(script, cfg);
        fast.set_skip_enabled(true);
        let mut slow = fast.clone();
        slow.set_skip_enabled(false);
        fast.run(3_000, &mut RoundRobin);
        slow.run(3_000, &mut RoundRobin);
        assert_bit_identical(&fast, &slow, "syscall drain");
        assert!(slow.counters(Tid(0)).syscalls > 0, "no syscall retired");
        assert!(
            fast.skipped_cycles() > fast.config().syscall_latency,
            "drain/execute windows not fast-forwarded: {} skipped",
            fast.skipped_cycles()
        );
    }

    /// A migration penalty longer than every other stall: the horizon is
    /// the penalty expiry itself, and the skip must stop exactly there
    /// (fetch resumes the same cycle as under stepping).
    #[test]
    fn migration_penalty_expiring_first() {
        let script: Vec<MicroOp> = (0..4u8).map(|i| alu(4 * i as u64, 10 + i, None)).collect();
        let mut fast = machine_with(script, SimConfig::with_threads(1));
        fast.set_skip_enabled(true);
        let mut slow = fast.clone();
        slow.set_skip_enabled(false);
        for m in [&mut fast, &mut slow] {
            m.run(100, &mut RoundRobin);
            let th = m.migrate_out(Tid(0));
            m.migrate_in(Tid(0), th, 257);
            m.run(1_000, &mut RoundRobin);
        }
        assert_bit_identical(&fast, &slow, "migration penalty");
        assert!(
            fast.skipped_cycles() >= 200,
            "penalty window not fast-forwarded: {} skipped",
            fast.skipped_cycles()
        );
        assert!(
            slow.counters(Tid(0)).committed > 0,
            "thread never resumed after the penalty"
        );
    }
}
