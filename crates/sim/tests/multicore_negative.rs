//! Negative-path suite for the `SMTMCKP` multi-core checkpoint container:
//! every corruption mode must surface as a typed
//! [`CodecError`](smt_isa::codec::CodecError) — never a panic, never a
//! silently-wrong machine.
//!
//! The container is `magic | version | n_cores | topology section |
//! alloc section | core sections…`, each section independently
//! length-framed and FNV-checksummed. The tests probe the framing
//! (truncation at every byte, trailing garbage, a lying core count), the
//! checksums (a flip at every byte, targeted per-core payload flips), the
//! header fields (foreign magic, future version), and the semantic
//! topology validation (out-of-range cores/slots, doubly-assigned slots)
//! — the latter by mutating the topology payload and *restamping* its
//! checksum, so validation and not the checksum is what must catch it.

use smt_isa::codec::{fnv1a_64, CodecError};
use smt_sim::{
    MultiCoreMachine, MultiCoreSnapshot, RoundRobin, SimConfig, SmtMachine, MC_FORMAT_VERSION,
};
use smt_workloads::UopStream;
use std::sync::Arc;

fn synth(seed: u64, t: usize) -> UopStream {
    UopStream::new(
        Arc::new(smt_isa::AppProfile::builder("neg").build()),
        seed,
        smt_workloads::thread_addr_base(t),
    )
}

/// A structurally rich sample: 2 cores × 2 contexts, 3 threads, warm
/// caches, one completed migration (so the topology has non-trivial
/// migration counts and an in-flight penalty), and a non-empty
/// allocator blob.
fn sample_machine() -> MultiCoreMachine {
    let cfg = SimConfig::with_threads(2);
    let core0 = SmtMachine::new(cfg.clone(), vec![synth(1, 0), synth(3, 2)]);
    let core1 = SmtMachine::new(cfg, vec![synth(2, 1), synth(9, 5)]);
    let mut m = MultiCoreMachine::from_cores(vec![core0, core1], vec![(0, 0), (1, 0), (0, 1)], 128);
    let mut ch = [RoundRobin, RoundRobin];
    m.run(400, &mut ch);
    assert_eq!(m.apply_placement(&[0, 0, 1]), 2);
    m.run(40, &mut ch); // capture lands inside the penalty window
    m
}

const ALLOC_BLOB: &[u8] = b"\x01opaque-alloc-state\xff\x00tail";

fn sample_bytes() -> Vec<u8> {
    MultiCoreSnapshot::capture(&sample_machine(), ALLOC_BLOB.to_vec()).to_bytes()
}

/// Section layout helper: returns `(payload_start, payload_len)` of the
/// `idx`-th section (0 = topology, 1 = alloc blob, 2.. = cores), walking
/// the same framing `from_bytes` reads.
fn section_bounds(bytes: &[u8], idx: usize) -> (usize, usize) {
    let mut off = 16; // magic 8 | version 4 | n_cores 4
    for _ in 0..idx {
        let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
        off += 8 + len + 8;
    }
    let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
    (off + 8, len)
}

/// Mutate the topology payload in place, then restamp its checksum so the
/// semantic validator (not the checksum) has to reject the result.
fn with_restamped_topology(mut bytes: Vec<u8>, f: impl FnOnce(&mut [u8])) -> Vec<u8> {
    let (start, len) = section_bounds(&bytes, 0);
    f(&mut bytes[start..start + len]);
    let sum = fnv1a_64(&bytes[start..start + len]);
    bytes[start + len..start + len + 8].copy_from_slice(&sum.to_le_bytes());
    bytes
}

#[test]
fn the_sample_is_valid_to_begin_with() {
    let m = sample_machine();
    let snap = MultiCoreSnapshot::capture(&m, ALLOC_BLOB.to_vec());
    let bytes = snap.to_bytes();
    let parsed = MultiCoreSnapshot::from_bytes(&bytes).expect("own bytes must parse");
    assert_eq!(parsed.alloc_state(), ALLOC_BLOB);
    assert_eq!(parsed.to_bytes(), bytes, "round trip must be bit-identical");
    let restored = parsed.restore();
    assert_eq!(restored.counter_snapshot(), m.counter_snapshot());
    assert_eq!(restored.placement(), m.placement());
    assert_eq!(restored.migrations(), &[0, 1, 1]);
}

/// Every structurally meaningful offset in the container: the header
/// bytes, and for each section its length field, payload edges and
/// middle, and stored checksum — plus an even spread across the file.
fn interesting_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offs: Vec<usize> = (0..16).collect(); // magic | version | n_cores
    for idx in 0..4 {
        let (start, len) = section_bounds(bytes, idx);
        offs.extend(start - 8..start); // the length field
        offs.extend([start, start + len / 3, start + len / 2, start + len - 1]);
        offs.extend(start + len..start + len + 8); // the stored checksum
    }
    for frac in 1..64 {
        offs.push(bytes.len() * frac / 64);
    }
    offs.sort_unstable();
    offs.dedup();
    offs.retain(|&o| o < bytes.len());
    offs
}

/// Truncation at every section cut (and a spread of interior cuts): each
/// proper prefix must decode to a typed, displayable error — never a
/// panic, never a valid container.
#[test]
fn truncation_at_every_section_cut_is_a_typed_error() {
    let bytes = sample_bytes();
    let mut cuts = interesting_offsets(&bytes);
    cuts.extend(interesting_offsets(&bytes).iter().map(|&o| o + 1));
    cuts.retain(|&c| c < bytes.len());
    for cut in cuts {
        let err = MultiCoreSnapshot::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes must not decode"));
        assert!(!err.to_string().is_empty());
    }
}

/// A flip at every structurally meaningful offset: the section checksums
/// plus the cross-checked framing leave no byte of the container
/// unprotected.
#[test]
fn byte_flips_at_every_structural_offset_are_detected() {
    let bytes = sample_bytes();
    for at in interesting_offsets(&bytes) {
        let mut bad = bytes.clone();
        bad[at] ^= 0x40;
        MultiCoreSnapshot::from_bytes(&bad)
            .expect_err(&format!("flip at byte {at} must be detected"));
    }
}

/// A payload flip inside each core's own section is that core's checksum
/// failure — corruption is localized to one section's verdict.
#[test]
fn per_core_payload_flips_fail_that_cores_checksum() {
    let bytes = sample_bytes();
    for core in 0..2 {
        let (start, len) = section_bounds(&bytes, 2 + core);
        assert!(len > 64, "core section implausibly small");
        for probe in [start, start + len / 2, start + len - 1] {
            let mut bad = bytes.clone();
            bad[probe] ^= 0x01;
            assert!(
                matches!(
                    MultiCoreSnapshot::from_bytes(&bad),
                    Err(CodecError::ChecksumMismatch)
                ),
                "core {core} flip at {probe} not a checksum mismatch"
            );
        }
    }
}

#[test]
fn foreign_magic_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[..8].copy_from_slice(b"SMTTRACE");
    assert!(matches!(
        MultiCoreSnapshot::from_bytes(&bytes),
        Err(CodecError::BadMagic)
    ));
}

#[test]
fn future_version_is_rejected_with_both_versions_named() {
    let mut bytes = sample_bytes();
    let future = MC_FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    match MultiCoreSnapshot::from_bytes(&bytes) {
        Err(CodecError::UnsupportedVersion { found, expected }) => {
            assert_eq!(found, future);
            assert_eq!(expected, MC_FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// The declared core count must agree with the sections actually present:
/// zero is semantically invalid, fewer leaves trailing bytes, more runs
/// off the end.
#[test]
fn core_count_mismatch_is_rejected() {
    let bytes = sample_bytes();

    let mut zero = bytes.clone();
    zero[12..16].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        MultiCoreSnapshot::from_bytes(&zero),
        Err(CodecError::Invalid(_))
    ));

    let mut fewer = bytes.clone();
    fewer[12..16].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        MultiCoreSnapshot::from_bytes(&fewer),
        Err(CodecError::TrailingBytes { .. })
    ));

    let mut more = bytes;
    more[12..16].copy_from_slice(&3u32.to_le_bytes());
    assert!(matches!(
        MultiCoreSnapshot::from_bytes(&more),
        Err(CodecError::Truncated { .. })
    ));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = sample_bytes();
    bytes.extend_from_slice(b"\x00\xde\xad");
    assert!(matches!(
        MultiCoreSnapshot::from_bytes(&bytes),
        Err(CodecError::TrailingBytes { remaining: 3 })
    ));
}

// Topology payload layout (multicore.rs to_bytes): n_threads u64 |
// (core u32, slot u32) × n | penalty u64 | migrations u64 × n | L2…
// Thread g's core id therefore sits at payload offset 8 + 8g.

#[test]
fn placement_core_out_of_range_is_semantically_rejected() {
    let bad = with_restamped_topology(sample_bytes(), |topo| {
        topo[8..12].copy_from_slice(&7u32.to_le_bytes());
    });
    match MultiCoreSnapshot::from_bytes(&bad) {
        Err(CodecError::Invalid(msg)) => assert!(msg.contains("core 7"), "{msg}"),
        other => panic!("expected Invalid(core range), got {other:?}"),
    }
}

#[test]
fn placement_slot_out_of_range_is_semantically_rejected() {
    let bad = with_restamped_topology(sample_bytes(), |topo| {
        topo[12..16].copy_from_slice(&5u32.to_le_bytes());
    });
    match MultiCoreSnapshot::from_bytes(&bad) {
        Err(CodecError::Invalid(msg)) => assert!(msg.contains("slot 5"), "{msg}"),
        other => panic!("expected Invalid(slot range), got {other:?}"),
    }
}

#[test]
fn doubly_assigned_slot_is_semantically_rejected() {
    // After the [0,0,1] re-placement the sample's placement is
    // [(0,0),(0,1),(1,?)]; aliasing thread 1 onto thread 0's (0,0) slot
    // is a topology the machine could never reach.
    let bad = with_restamped_topology(sample_bytes(), |topo| {
        let g0: [u8; 8] = topo[8..16].try_into().unwrap();
        topo[16..24].copy_from_slice(&g0);
    });
    match MultiCoreSnapshot::from_bytes(&bad) {
        Err(CodecError::Invalid(msg)) => assert!(msg.contains("doubly assigned"), "{msg}"),
        other => panic!("expected Invalid(double assignment), got {other:?}"),
    }
}

#[test]
fn zero_threads_in_topology_is_semantically_rejected() {
    let bad = with_restamped_topology(sample_bytes(), |topo| {
        topo[..8].copy_from_slice(&0u64.to_le_bytes());
    });
    // With n_threads lying, the rest of the topology misparses one way or
    // another — what matters is a typed error, not a panic.
    assert!(MultiCoreSnapshot::from_bytes(&bad).is_err());
}
