//! Conservation property for slot-accounting attribution.
//!
//! Every cycle the machine owns exactly `fetch_width` fetch slots,
//! `issue_width` issue slots and `commit_width` commit slots; the
//! attribution layer must account for all of them, every cycle, under any
//! workload mix and any fetch-priority policy. These tests step machines
//! one cycle at a time and require each per-cycle stack delta to sum to
//! the stage width across threads — the machine's internal debug-asserts
//! check the same thing at the hook sites, so a violation fails twice.

use proptest::prelude::*;
use smt_sim::{AttrSnapshot, FetchChooser, PolicyView, RoundRobin, SimConfig, SmtMachine};
use smt_workloads::mix;

/// A family of deterministic choosers standing in for the policy crate
/// (`smt-sim` must not depend on `smt-policies`): identity, round-robin,
/// an ICOUNT-alike, and a static inverted priority.
struct TestChooser(u8);

impl FetchChooser for TestChooser {
    fn prioritize(&mut self, cycle: u64, views: &mut Vec<PolicyView>) {
        match self.0 % 4 {
            0 => {}
            1 => RoundRobin.prioritize(cycle, views),
            2 => views.sort_by_key(|v| (v.front_end_occ as u64 + v.iq_occ as u64, v.tid.0)),
            _ => views.sort_by_key(|v| std::cmp::Reverse(v.tid.0)),
        }
    }
}

fn machine(mix_id: usize, threads: usize, seed: u64) -> SmtMachine {
    let m = mix(mix_id).take_threads(threads, 1);
    let mut machine = SmtMachine::new(SimConfig::with_threads(threads), m.streams(seed));
    machine.enable_attr();
    machine
}

/// Step once and require each stage's per-cycle categories to sum to its
/// width; returns the new snapshot.
fn step_checked<C: FetchChooser>(
    machine: &mut SmtMachine,
    chooser: &mut C,
    prev: &AttrSnapshot,
) -> AttrSnapshot {
    let (fw, iw, cw) = {
        let c = machine.config();
        (c.fetch_width, c.issue_width, c.commit_width)
    };
    machine.step(chooser);
    let snap = machine.attr().expect("attr enabled").snapshot();
    let d = snap.delta(prev);
    assert_eq!(d.cycles, 1);
    let fetch: u64 = d.threads.iter().map(|s| s.fetch_total()).sum();
    let issue: u64 = d.threads.iter().map(|s| s.issue_total()).sum();
    let commit: u64 = d.threads.iter().map(|s| s.commit_total()).sum();
    assert_eq!(fetch, fw as u64, "fetch slots not conserved: {d:?}");
    assert_eq!(issue, iw as u64, "issue slots not conserved: {d:?}");
    assert_eq!(commit, cw as u64, "commit slots not conserved: {d:?}");
    snap
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Per-cycle, per-stage conservation over random mixes and policies.
    #[test]
    fn slot_stacks_conserve_stage_widths(
        mix_id in 1usize..10,
        threads in 2usize..5,
        kind in 0u8..4,
        cycles in 64u64..192,
    ) {
        let mut machine = machine(mix_id, threads, 42);
        let mut chooser = TestChooser(kind);
        let mut prev = machine.attr().expect("attr enabled").snapshot();
        for _ in 0..cycles {
            prev = step_checked(&mut machine, &mut chooser, &prev);
        }
        machine.check_invariants();
        let total = machine.attr().expect("attr enabled");
        prop_assert_eq!(total.cycles(), cycles);
        let fetch: u64 = total.stacks().iter().map(|s| s.fetch_total()).sum();
        prop_assert_eq!(fetch, cycles * machine.config().fetch_width as u64);
    }

    /// Conservation survives ADTS-style fetch gating: threads toggled off
    /// mid-run must show up as policy-starved slots, never as slots gone
    /// missing.
    #[test]
    fn conservation_with_fetch_gating(
        mix_id in 1usize..10,
        mask in 1u8..15,
        cycles in 64u64..160,
    ) {
        let threads = 4;
        let mut machine = machine(mix_id, threads, 7);
        let mut chooser = TestChooser(1);
        let mut prev = machine.attr().expect("attr enabled").snapshot();
        for c in 0..cycles {
            if c % 32 == 0 {
                for t in 0..threads {
                    let on = c % 64 == 0 || mask & (1 << t) != 0;
                    machine.set_fetch_enabled(smt_isa::Tid(t as u8), on);
                }
            }
            prev = step_checked(&mut machine, &mut chooser, &prev);
        }
        machine.check_invariants();
    }
}

/// Attribution must never change what the machine does: a run with attr
/// enabled commits exactly what the bare run commits.
#[test]
fn attribution_does_not_perturb_the_machine() {
    for mix_id in [1, 9] {
        let m = mix(mix_id).take_threads(2, 1);
        let mut bare = SmtMachine::new(SimConfig::with_threads(2), m.streams(42));
        let mut attributed = bare.clone();
        attributed.enable_attr();
        bare.run(4096, &mut RoundRobin);
        attributed.run(4096, &mut RoundRobin);
        assert_eq!(bare.counter_snapshot(), attributed.counter_snapshot());
        assert_eq!(bare.debug_snapshot(), attributed.debug_snapshot());
        let attr = attributed.disable_attr().expect("attr was enabled");
        assert_eq!(attr.cycles(), 4096);
        // Once disabled, the machine drops back to the uninstrumented path
        // and the two stay in lockstep.
        bare.run(1024, &mut RoundRobin);
        attributed.run(1024, &mut RoundRobin);
        assert_eq!(bare.counter_snapshot(), attributed.counter_snapshot());
    }
}
