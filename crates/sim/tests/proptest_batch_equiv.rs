//! Property tests for the lockstep batch engine: a [`MachineBatch`] must
//! be indistinguishable — bit for bit — from stepping every cell's machine
//! scalar, no matter where the cells' decisions diverge.
//!
//! The cell here is a deliberately adversarial stand-in for a policy
//! point: its plan flips fetch priority on a per-cell *threshold* (so
//! sibling cells fork mid-batch exactly like ADTS points crossing their
//! IPC thresholds), its boundary toggles fetch gates on a per-cell
//! *parity* (forking the second partition point too), and its plan carries
//! random flush / thread-replace / fetch-toggle churn. After **every**
//! quantum, every cell's machine must match its scalar twin in both the
//! counter snapshot and the full serialized machine state.

use proptest::prelude::*;
use smt_isa::Tid;
use smt_sim::snapshot::MachineSnapshot;
use smt_sim::{
    run_scalar_quantum, FetchChooser, FnChooser, LockstepCell, MachineBatch, RoundRobin, SimConfig,
    SmtMachine,
};
use smt_workloads::UopStream;
use std::sync::Arc;

fn test_machine(n: usize, seed: u64) -> SmtMachine {
    let cfg = SimConfig::with_threads(n);
    let streams = (0..n)
        .map(|i| {
            UopStream::new(
                Arc::new(smt_isa::AppProfile::builder("t").build()),
                seed + i as u64,
                smt_workloads::thread_addr_base(i),
            )
        })
        .collect();
    SmtMachine::new(cfg, streams)
}

/// One scripted churn event, fanned out through the plan so both stepping
/// paths replay it identically.
#[derive(Clone, Debug, PartialEq)]
enum ChurnOp {
    Flush(u8),
    Replace(u8, u64),
    Toggle(u8),
}

#[derive(Clone, Debug, PartialEq)]
struct ChurnPlan {
    cycles: u64,
    /// The "policy decision": fetch priority reversed this quantum.
    reversed: bool,
    ops: Vec<ChurnOp>,
}

#[derive(Clone, Debug, PartialEq)]
struct ChurnBoundary {
    toggles: Vec<(u8, bool)>,
}

/// A policy-point stand-in whose decisions depend on machine state and two
/// per-cell knobs, so sibling cells shear apart at both fork points.
struct ChurnCell {
    /// Plan divergence knob: reverse priority when committed % 97 < this.
    threshold: u64,
    /// Boundary divergence knob: offsets the fetch-gate parity.
    parity: u64,
    /// Per-quantum churn script.
    script: Vec<Vec<ChurnOp>>,
    q: usize,
}

impl LockstepCell for ChurnCell {
    type Plan = ChurnPlan;
    type Boundary = ChurnBoundary;

    fn plan(&mut self, m: &SmtMachine) -> ChurnPlan {
        let ops = self.script.get(self.q).cloned().unwrap_or_default();
        self.q += 1;
        ChurnPlan {
            cycles: 120,
            reversed: m.total_committed() % 97 < self.threshold,
            ops,
        }
    }

    fn execute(plan: &ChurnPlan, m: &mut SmtMachine) {
        let n = m.n_threads() as u8;
        for op in &plan.ops {
            match *op {
                ChurnOp::Flush(t) => m.flush_thread(Tid(t % n)),
                ChurnOp::Replace(t, salt) => {
                    let t = t % n;
                    let s = UopStream::new(
                        Arc::new(smt_isa::AppProfile::builder("t").build()),
                        salt ^ 0xF00D,
                        smt_workloads::thread_addr_base(t as usize),
                    );
                    m.replace_thread(Tid(t), s, salt % 7);
                }
                ChurnOp::Toggle(t) => {
                    let tid = Tid(t % n);
                    let on = m.fetch_enabled(tid);
                    m.set_fetch_enabled(tid, !on);
                }
            }
        }
        if plan.reversed {
            let mut chooser = FnChooser(|cycle, views: &mut Vec<_>| {
                RoundRobin.prioritize(cycle, views);
                views.reverse();
            });
            m.run(plan.cycles, &mut chooser);
        } else {
            m.run(plan.cycles, &mut RoundRobin);
        }
    }

    fn observe(&mut self, m: &SmtMachine) -> ChurnBoundary {
        // Clog-control analogue: gate one thread, direction by parity.
        let n = m.n_threads() as u64;
        let t = ((m.cycle() / 7) % n) as u8;
        let on = (m.total_committed() + self.parity).is_multiple_of(2);
        ChurnBoundary {
            toggles: vec![(t, on)],
        }
    }

    fn apply_boundary(b: &ChurnBoundary, m: &mut SmtMachine) {
        for &(t, on) in &b.toggles {
            m.set_fetch_enabled(Tid(t), on);
        }
    }
}

/// Per-cell parameters drawn by proptest (the cell itself is stateful, so
/// the batch and scalar paths each construct their own instance from
/// these).
#[derive(Clone, Debug)]
struct CellParams {
    threshold: u64,
    parity: u64,
    script: Vec<Vec<ChurnOp>>,
}

fn make_cell(p: &CellParams) -> ChurnCell {
    ChurnCell {
        threshold: p.threshold,
        parity: p.parity,
        script: p.script.clone(),
        q: 0,
    }
}

fn op_strategy() -> impl Strategy<Value = ChurnOp> {
    (0u8..3, 0u8..8, 0u64..1_000).prop_map(|(kind, t, salt)| match kind {
        0 => ChurnOp::Flush(t),
        1 => ChurnOp::Replace(t, salt),
        _ => ChurnOp::Toggle(t),
    })
}

fn cell_params() -> impl Strategy<Value = CellParams> {
    (
        0u64..98,
        0u64..2,
        prop::collection::vec(prop::collection::vec(op_strategy(), 0..3), 0..6),
    )
        .prop_map(|(threshold, parity, script)| CellParams {
            threshold,
            parity,
            script,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// The ISSUE's pinning property: random machine, random cells (random
    /// thresholds, parities and churn scripts) — after every quantum every
    /// batched cell's machine is bit-identical to its scalar twin.
    #[test]
    fn batched_cells_are_bit_identical_to_scalar_after_every_quantum(
        n in 1usize..5,
        seed in 0u64..1_000,
        warm in 0u64..400,
        quanta in 1usize..6,
        params in prop::collection::vec(cell_params(), 1..5),
    ) {
        let mut base = test_machine(n, seed);
        base.run(warm, &mut RoundRobin);

        let k = params.len();
        let mut scalar_cells: Vec<ChurnCell> = params.iter().map(make_cell).collect();
        let mut scalar_ms: Vec<SmtMachine> = (0..k).map(|_| base.clone()).collect();
        let mut batch = MachineBatch::new(base, params.iter().map(make_cell).collect());

        for q in 0..quanta {
            batch.run_quantum();
            for i in 0..k {
                run_scalar_quantum(&mut scalar_cells[i], &mut scalar_ms[i]);
                prop_assert_eq!(
                    scalar_ms[i].counter_snapshot(),
                    batch.machine_for(i).counter_snapshot(),
                    "cell {} counters diverged at quantum {}", i, q
                );
                prop_assert_eq!(
                    MachineSnapshot::capture(&scalar_ms[i]).to_bytes(),
                    MachineSnapshot::capture(batch.machine_for(i)).to_bytes(),
                    "cell {} machine state diverged at quantum {}", i, q
                );
            }
        }
        // Accounting sanity: every cell advanced every quantum, on no more
        // machines than cells.
        let stats = batch.stats();
        prop_assert_eq!(stats.cell_quanta, (k * quanta) as u64);
        prop_assert!(stats.machine_quanta <= stats.cell_quanta);
    }

    /// Identical cells never fork: the batch must run the whole quantum
    /// sequence on exactly one machine, and still match scalar stepping.
    #[test]
    fn identical_cells_share_one_machine(
        n in 1usize..4,
        seed in 0u64..1_000,
        quanta in 1usize..5,
        k in 2usize..5,
        p in cell_params(),
    ) {
        let base = test_machine(n, seed);
        let mut scalar_cell = make_cell(&p);
        let mut scalar_m = base.clone();
        let mut batch = MachineBatch::new(base, (0..k).map(|_| make_cell(&p)).collect());
        for _ in 0..quanta {
            batch.run_quantum();
            run_scalar_quantum(&mut scalar_cell, &mut scalar_m);
        }
        let stats = batch.stats();
        prop_assert_eq!(batch.n_groups(), 1);
        prop_assert_eq!(stats.machine_quanta, quanta as u64);
        prop_assert_eq!(stats.plan_forks + stats.boundary_forks, 0);
        for i in 0..k {
            prop_assert_eq!(
                MachineSnapshot::capture(&scalar_m).to_bytes(),
                MachineSnapshot::capture(batch.machine_for(i)).to_bytes(),
                "shared-machine cell {} diverged from scalar", i
            );
        }
    }
}
