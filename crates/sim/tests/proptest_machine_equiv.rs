//! Differential property tests for the shared-queue rewrite.
//!
//! The hot-path overhaul replaced the machine's `Vec`+`retain` shared
//! queues with the per-thread-indexed [`IndexedQueue`]. The original
//! implementation survives as [`reference::RetainQueue`] — these tests
//! drive both through random operation scripts and demand *identical*
//! contents, order, and per-thread views after every step, so any
//! divergence in the replacement's semantics is caught at the structure
//! level (the golden-trace suite catches it at the machine level).
//!
//! A second group steps whole machines through random quanta interleaved
//! with `flush_thread`/`replace_thread` and runs the machine's full
//! invariant check (gauges, per-thread queue index, link validation)
//! after every single step.

use proptest::prelude::*;
use smt_isa::Tid;
use smt_sim::iqueue::reference::RetainQueue;
use smt_sim::{IndexedQueue, RoundRobin, SimConfig, SmtMachine};
use smt_workloads::UopStream;
use std::sync::Arc;

const N_THREADS: usize = 4;

/// One scripted queue operation; fields are interpreted modulo the live
/// state when applied (so every generated script is valid by construction).
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Push the next seq for thread `t`.
    Push(usize),
    /// Squash thread `t` at a min_gone cut derived from `pick`.
    Squash(usize, u64),
    /// Flush thread `t`.
    Flush(usize),
    /// Remove thread `t`'s oldest entry by exact seq (the commit pattern).
    CommitOldest(usize),
    /// Pop the global front if non-empty.
    PopFront,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..8, 0u64..64, 0u64..1_000).prop_map(|(code, t, pick)| {
            let t = (t % N_THREADS as u64) as usize;
            match code {
                // Bias toward pushes so the queues actually fill.
                0..=3 => Op::Push(t),
                4 => Op::Squash(t, pick),
                5 => Op::Flush(t),
                6 => Op::CommitOldest(t),
                _ => Op::PopFront,
            }
        }),
        1..120,
    )
}

/// Apply one op to both implementations, keeping them in lock-step.
fn apply(
    op: Op,
    a: &mut IndexedQueue<u64>,
    b: &mut RetainQueue<u64>,
    next_seq: &mut [u64; N_THREADS],
) {
    match op {
        Op::Push(t) => {
            let seq = next_seq[t];
            next_seq[t] += 1;
            // Payload encodes (thread, seq) so content comparisons are
            // meaningful, not just key comparisons.
            let payload = (t as u64) << 32 | seq;
            a.push_back(Tid(t as u8), seq, payload);
            b.push_back(Tid(t as u8), seq, payload);
        }
        Op::Squash(t, pick) => {
            let min_gone = if next_seq[t] == 0 {
                0
            } else {
                pick % (next_seq[t] + 1)
            };
            let ra = a.squash_tail(Tid(t as u8), min_gone);
            let rb = b.squash_tail(Tid(t as u8), min_gone);
            assert_eq!(ra, rb, "squash removal counts diverge");
        }
        Op::Flush(t) => {
            let ra = a.remove_thread(Tid(t as u8));
            let rb = b.remove_thread(Tid(t as u8));
            assert_eq!(ra, rb, "flush removal counts diverge");
        }
        Op::CommitOldest(t) => {
            let seq = b.iter_thread(Tid(t as u8)).next().map(|(s, _)| s);
            if let Some(seq) = seq {
                let ra = a.find_thread_remove(Tid(t as u8), seq);
                let rb = b.find_thread_remove(Tid(t as u8), seq);
                assert!(ra && rb, "oldest entry must be removable");
            } else {
                // Absent seq: both must refuse (and stay untouched).
                let ra = a.find_thread_remove(Tid(t as u8), u64::MAX);
                let rb = b.find_thread_remove(Tid(t as u8), u64::MAX);
                assert!(!ra && !rb, "removal of an absent seq must fail");
            }
        }
        Op::PopFront => {
            if !b.is_empty() {
                a.pop_front();
                b.pop_front();
            }
        }
    }
}

fn assert_equivalent(a: &IndexedQueue<u64>, b: &RetainQueue<u64>) {
    a.validate();
    assert_eq!(a.len(), b.len(), "lengths diverge");
    let av: Vec<_> = a.iter().map(|(t, s, p)| (t, s, *p)).collect();
    let bv: Vec<_> = b.iter().map(|(t, s, p)| (t, s, *p)).collect();
    assert_eq!(av, bv, "global age order diverges");
    assert_eq!(
        a.front().map(|(t, s, p)| (t, s, *p)),
        b.front().map(|(t, s, p)| (t, s, *p)),
        "front diverges"
    );
    for t in 0..N_THREADS {
        let tid = Tid(t as u8);
        assert_eq!(a.thread_len(tid), b.thread_len(tid), "thread_len diverges");
        let at: Vec<_> = a.iter_thread(tid).map(|(s, p)| (s, *p)).collect();
        let bt: Vec<_> = b.iter_thread(tid).map(|(s, p)| (s, *p)).collect();
        assert_eq!(at, bt, "per-thread view diverges for {tid}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// The indexed queue and the pre-optimization retain queue agree on
    /// contents, order, and per-thread views after every operation of a
    /// random script.
    #[test]
    fn indexed_queue_matches_retain_reference(ops in arb_ops()) {
        let mut a: IndexedQueue<u64> = IndexedQueue::new(N_THREADS, 32);
        let mut b: RetainQueue<u64> = RetainQueue::new();
        let mut next_seq = [0u64; N_THREADS];
        for op in ops {
            apply(op, &mut a, &mut b, &mut next_seq);
            assert_equivalent(&a, &b);
        }
    }

    /// Interleaved squashes never disturb other threads' entries.
    #[test]
    fn squash_is_thread_local(
        pushes in prop::collection::vec((0u64..4, 0u64..1_000), 4..64),
        victim in 0u64..4,
        cut in 0u64..32,
    ) {
        let victim = Tid(victim as u8);
        let mut q: IndexedQueue<u64> = IndexedQueue::new(N_THREADS, 32);
        let mut next_seq = [0u64; N_THREADS];
        for (t, payload) in pushes {
            let t = t as usize;
            q.push_back(Tid(t as u8), next_seq[t], payload);
            next_seq[t] += 1;
        }
        let others_before: Vec<Vec<(u64, u64)>> = (0..N_THREADS)
            .map(|t| q.iter_thread(Tid(t as u8)).map(|(s, p)| (s, *p)).collect())
            .collect();
        q.squash_tail(victim, cut);
        q.validate();
        for (t, before) in others_before.iter().enumerate() {
            let tid = Tid(t as u8);
            let after: Vec<(u64, u64)> = q.iter_thread(tid).map(|(s, p)| (s, *p)).collect();
            if tid == victim {
                for (s, _) in &after {
                    prop_assert!(*s < cut, "survivor younger than the cut");
                }
            } else {
                prop_assert_eq!(&after, before, "bystander thread disturbed");
            }
        }
    }
}

// ---------------------------------------------------------------------
// machine-level: invariants under random flush/replace interleavings
// ---------------------------------------------------------------------

fn test_stream(seed: u64, tid: usize) -> UopStream {
    UopStream::new(
        Arc::new(smt_isa::AppProfile::builder("t").build()),
        seed,
        smt_workloads::thread_addr_base(tid),
    )
}

fn test_machine(n: usize, seed: u64) -> SmtMachine {
    let cfg = SimConfig::with_threads(n);
    let streams = (0..n).map(|i| test_stream(seed + i as u64, i)).collect();
    SmtMachine::new(cfg, streams)
}

// ---------------------------------------------------------------------
// readiness counters vs the window-search oracle over random dep graphs
// ---------------------------------------------------------------------

use smt_isa::{AppProfile, ArchReg, MemInfo, MicroOp, OpKind};

const DEP_BASE: u64 = 1 << 41;
/// Registers the random programs fight over — few, so chains are dense.
const DEP_REGS: u8 = 4;

/// One op of a random looping dep-graph program. `dst` is the *effective*
/// destination (already `None` for stores), so the test-side dep
/// computation and the machine's rename table see the same writer set.
#[derive(Clone, Debug)]
struct DepOp {
    kind: OpKind,
    dst: Option<u8>,
    src1: Option<u8>,
    src2: Option<u8>,
    addr: u64,
}

fn arb_dep_program() -> impl Strategy<Value = Vec<DepOp>> {
    let op = (
        0u8..5,
        0u8..DEP_REGS,
        prop::option::of(0u8..DEP_REGS),
        prop::option::of(0u8..DEP_REGS),
        0u64..512,
    )
        .prop_map(|(kind, dst, src1, src2, addr)| {
            let kind = match kind {
                0 => OpKind::IntAlu,
                1 => OpKind::IntMul,
                2 => OpKind::IntDiv,
                3 => OpKind::Load,
                _ => OpKind::Store,
            };
            DepOp {
                kind,
                dst: (kind != OpKind::Store).then_some(10 + dst),
                src1: src1.map(|r| 10 + r),
                src2: src2.map(|r| 10 + r),
                addr: addr * 8,
            }
        });
    // Anchor every program with a divide → consumer pair: an all-ALU
    // program can drain its queue every cycle, leaving nothing queued
    // between steps for the property to observe.
    prop::collection::vec(op, 2..12).prop_map(|mut prog| {
        prog.push(DepOp {
            kind: OpKind::IntDiv,
            dst: Some(10),
            src1: None,
            src2: None,
            addr: 0,
        });
        prog.push(DepOp {
            kind: OpKind::IntAlu,
            dst: Some(11),
            src1: Some(10),
            src2: None,
            addr: 0,
        });
        prog
    })
}

fn build_script(prog: &[DepOp]) -> Vec<MicroOp> {
    prog.iter()
        .enumerate()
        .map(|(i, d)| MicroOp {
            kind: d.kind,
            pc: DEP_BASE | (4 * i as u64),
            dst: d.dst.map(ArchReg::int),
            src1: d.src1.map(ArchReg::int),
            src2: d.src2.map(ArchReg::int),
            mem: matches!(d.kind, OpKind::Load | OpKind::Store).then_some(MemInfo {
                addr: DEP_BASE | d.addr,
                size: 8,
            }),
            branch: None,
        })
        .collect()
}

/// The producer seq of global op `g`'s source `src`, replayed from the
/// program alone: the youngest older op writing that register. With
/// in-order rename and no wrong path this is exactly what the machine's
/// rename table resolved at dispatch, so feeding it to the search oracle
/// cross-checks dep capture as well as the counters.
fn dep_for(prog: &[DepOp], g: u64, src: Option<u8>) -> Option<u64> {
    let r = src?;
    let l = prog.len() as u64;
    let newest = g.checked_sub(1)?;
    // A writer, if any exists, lies within the previous full loop.
    (g.saturating_sub(l)..=newest)
        .rev()
        .find(|&g2| prog[(g2 % l) as usize].dst == Some(r))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Differential readiness-vs-search: over random looping dep graphs
    /// (random kinds, random src/dst wiring), every queued op's pending
    /// counter must agree with the retained window-binary-search oracle —
    /// judged against deps recomputed independently from the program —
    /// after every single cycle.
    #[test]
    fn readiness_counters_match_search_oracle_on_random_dep_graphs(
        prog in arb_dep_program(),
        // Floor clears the cold-start icache miss (~mem_latency + L2 hit
        // ≈ 90 cycles) so at least one dep-blocked op is always observed.
        cycles in 200u64..600,
    ) {
        let stream = UopStream::scripted(
            Arc::new(AppProfile::builder("dep").build()),
            DEP_BASE,
            build_script(&prog),
        );
        let mut m = SmtMachine::new(SimConfig::with_threads(1), vec![stream]);
        let mut checked = 0u64;
        for _ in 0..cycles {
            m.step(&mut RoundRobin);
            m.check_invariants();
            let lo = m.total_committed();
            for g in lo..lo + 96 {
                let d = prog[(g % prog.len() as u64) as usize].clone();
                if let Some(pending) = m.queued_pending(Tid(0), g) {
                    let deps = [dep_for(&prog, g, d.src1), dep_for(&prog, g, d.src2)];
                    prop_assert_eq!(
                        pending == 0,
                        m.deps_ready_search(Tid(0), &deps),
                        "pending {} vs search oracle for op {} (deps {:?}) at cycle {}",
                        pending, g, deps, m.cycle()
                    );
                    checked += 1;
                }
            }
        }
        prop_assert!(checked > 0, "no queued op was ever observed");
        prop_assert!(m.total_committed() > 0, "random dep graph wedged the machine");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Step a machine through random bursts interleaved with random
    /// flush/replace/fetch-toggle events, checking the full machine
    /// invariants (gauges, queue indices, link structure) after EVERY
    /// cycle — not just at quantum boundaries.
    #[test]
    fn invariants_hold_under_random_flush_replace(
        seed in 0u64..1_000,
        events in prop::collection::vec((0u64..4, 0u8..3, 1u64..80), 1..12),
    ) {
        let mut m = test_machine(4, seed);
        let mut replaced = 0u64;
        for (t, kind, burst) in events {
            let tid = Tid(t as u8);
            match kind {
                0 => m.flush_thread(tid),
                1 => {
                    replaced += 1;
                    let s = test_stream(seed ^ (0xF00D + replaced), t as usize);
                    m.replace_thread(tid, s, replaced % 7);
                }
                _ => {
                    let on = m.fetch_enabled(tid);
                    m.set_fetch_enabled(tid, !on);
                }
            }
            m.check_invariants();
            for _ in 0..burst {
                m.step(&mut RoundRobin);
                m.check_invariants();
            }
        }
        // The machine must still be able to make forward progress.
        for t in 0..4 {
            m.set_fetch_enabled(Tid(t), true);
        }
        let committed = m.total_committed();
        m.run(3_000, &mut RoundRobin);
        prop_assert!(m.total_committed() > committed, "machine wedged after flush/replace storm");
        m.check_invariants();
    }
}
