//! Differential property tests for the multi-core allocation layer.
//!
//! [`MultiCoreMachine::apply_placement`] is the one new piece of machinery
//! a wrong line of which would silently corrupt cross-core experiments:
//! it decides extraction order, destination slots, penalty charging, and
//! migration accounting. The first group drives random allocation scripts
//! through `apply_placement` and, in parallel, through a test-side
//! reference that performs every re-placement by hand with the public
//! [`SmtMachine::migrate_out`]/[`SmtMachine::migrate_in`] thread-state
//! transfer on an identically constructed machine — per-thread
//! architectural counters must agree after every segment.
//!
//! The second group interrupts a run mid-migration (inside the
//! cold-frontend penalty window) with a [`MultiCoreSnapshot`] capture →
//! serialize → parse → restore round trip and demands the bytes be
//! bit-identical and the restored machine indistinguishable from the
//! uninterrupted one.

use proptest::prelude::*;
use smt_isa::Tid;
use smt_sim::{
    MigratedThread, MultiCoreMachine, MultiCoreSnapshot, RoundRobin, SimConfig, SmtMachine,
};
use smt_workloads::UopStream;
use std::sync::Arc;

fn synth(seed: u64, t: usize) -> UopStream {
    UopStream::new(
        Arc::new(smt_isa::AppProfile::builder("mc").build()),
        seed,
        smt_workloads::thread_addr_base(t),
    )
}

/// Initial placement: thread `g` on core `g % n_cores`, packed into the
/// lowest free slot — the same shape the allocation layer starts from.
fn initial_placement(n_threads: usize, n_cores: usize) -> Vec<(usize, usize)> {
    let mut next_slot = vec![0usize; n_cores];
    (0..n_threads)
        .map(|g| {
            let c = g % n_cores;
            let s = next_slot[c];
            next_slot[c] += 1;
            (c, s)
        })
        .collect()
}

/// Build one copy of the core set: every core has `n_threads` context
/// slots (full migration freedom); slot (c,s) hosting global thread `g`
/// gets that thread's stream, unoccupied slots get distinct placeholders.
fn build_cores(
    n_cores: usize,
    n_threads: usize,
    placement: &[(usize, usize)],
    seed: u64,
) -> Vec<SmtMachine> {
    let mut owner = vec![vec![None; n_threads]; n_cores];
    for (g, &(c, s)) in placement.iter().enumerate() {
        owner[c][s] = Some(g);
    }
    (0..n_cores)
        .map(|c| {
            let streams = (0..n_threads)
                .map(|s| match owner[c][s] {
                    Some(g) => synth(seed + g as u64, g),
                    None => synth(seed + 0xBEEF + (c * 8 + s) as u64, n_threads + c * 8 + s),
                })
                .collect();
            SmtMachine::new(SimConfig::with_threads(n_threads), streams)
        })
        .collect()
}

/// The reference re-placement: the same contract as `apply_placement`
/// (movers out in ascending global id, back in ascending global id to the
/// lowest free slot), executed by hand through the public single-core
/// migration API against an independently tracked placement map.
fn manual_place(
    m: &mut MultiCoreMachine,
    cur: &mut [(usize, usize)],
    new_cores: &[usize],
    penalty: u64,
) -> usize {
    let mut occupied = vec![vec![false; m.core(0).n_threads()]; m.n_cores()];
    for &(c, s) in cur.iter() {
        occupied[c][s] = true;
    }
    let mut in_transit: Vec<(usize, MigratedThread)> = Vec::new();
    for (g, &dst) in new_cores.iter().enumerate() {
        let (c, s) = cur[g];
        if c == dst {
            continue;
        }
        in_transit.push((g, m.core_mut(c).migrate_out(Tid(s as u8))));
        occupied[c][s] = false;
    }
    let moved = in_transit.len();
    for (g, thread) in in_transit {
        let dst = new_cores[g];
        let slot = occupied[dst].iter().position(|&o| !o).expect("free slot");
        occupied[dst][slot] = true;
        m.core_mut(dst).migrate_in(Tid(slot as u8), thread, penalty);
        cur[g] = (dst, slot);
    }
    moved
}

/// A random allocation script: per boundary, a destination-core pick for
/// every thread plus an odd-ish segment length.
fn arb_script() -> impl Strategy<Value = Vec<(Vec<u64>, u64)>> {
    prop::collection::vec((prop::collection::vec(0u64..64, 4..5), 20u64..350), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Random allocation scripts: after every segment, every thread's
    /// architectural counters under `apply_placement` equal the manual
    /// migrate_out/migrate_in reference, and the machine's placement and
    /// migration accounting match the test-side bookkeeping.
    #[test]
    fn apply_placement_matches_manual_snapshot_transfer(
        seed in 0u64..1_000,
        n_cores in 1usize..4,
        n_threads in 1usize..5,
        penalty in 0u64..600,
        script in arb_script(),
    ) {
        let placement = initial_placement(n_threads, n_cores);
        let mut prod = MultiCoreMachine::from_cores(
            build_cores(n_cores, n_threads, &placement, seed),
            placement.clone(),
            penalty,
        );
        let mut refm = MultiCoreMachine::from_cores(
            build_cores(n_cores, n_threads, &placement, seed),
            placement.clone(),
            penalty,
        );
        let mut cur = placement;
        let mut expected_migrations = vec![0u64; n_threads];
        let mut ch: Vec<RoundRobin> = vec![RoundRobin; n_cores];

        for (dests, cycles) in script {
            let dests: Vec<usize> = dests[..n_threads]
                .iter()
                .map(|&d| (d as usize) % n_cores)
                .collect();
            for (g, &dst) in dests.iter().enumerate() {
                if cur[g].0 != dst {
                    expected_migrations[g] += 1;
                }
            }
            let moved_prod = prod.apply_placement(&dests);
            let moved_ref = manual_place(&mut refm, &mut cur, &dests, penalty);
            prop_assert_eq!(moved_prod, moved_ref, "mover counts diverge");
            prop_assert_eq!(prod.placement(), &cur[..], "placements diverge");
            prod.run(cycles, &mut ch);
            refm.run(cycles, &mut ch);
            prod.check_invariants();
            refm.check_invariants();
            prop_assert_eq!(prod.cycle(), refm.cycle());
            for (g, &(c, s)) in cur.iter().enumerate().take(n_threads) {
                prop_assert_eq!(
                    prod.thread_counters(g),
                    refm.core(c).counters(Tid(s as u8)),
                    "thread {} counters diverge after segment at ({},{})",
                    g, c, s
                );
            }
        }
        prop_assert_eq!(prod.migrations(), &expected_migrations[..]);
        // Settle past any still-open penalty window: the machines must
        // remain in agreement and able to make forward progress.
        prod.run(2 * penalty + 1_000, &mut ch);
        refm.run(2 * penalty + 1_000, &mut ch);
        prop_assert_eq!(prod.counter_snapshot().cycle, refm.counter_snapshot().cycle);
        for (g, &(c, s)) in cur.iter().enumerate().take(n_threads) {
            prop_assert_eq!(prod.thread_counters(g), refm.core(c).counters(Tid(s as u8)));
        }
        prop_assert!(prod.total_committed() > 0, "script wedged the machine");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Interrupting a run *mid-migration* (inside the cold-frontend
    /// penalty) with capture → to_bytes → from_bytes → restore is
    /// invisible: the container round-trips bit-identically, the
    /// allocator blob survives untouched, and the restored machine tracks
    /// the uninterrupted one counter-for-counter.
    #[test]
    fn snapshot_roundtrip_mid_migration_is_bit_identical(
        seed in 0u64..1_000,
        n_cores in 2usize..4,
        n_threads in 2usize..5,
        pre in 50u64..400,
        post in 50u64..400,
        blob in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let placement = initial_placement(n_threads, n_cores);
        let mut m = MultiCoreMachine::from_cores(
            build_cores(n_cores, n_threads, &placement, seed),
            placement,
            10_000, // long penalty: the capture below lands mid-stall
        );
        let mut ch: Vec<RoundRobin> = vec![RoundRobin; n_cores];
        m.run(pre, &mut ch);
        // Force at least one migration so the penalty window is live.
        let mut dests: Vec<usize> = m.placement().iter().map(|&(c, _)| c).collect();
        dests[0] = (dests[0] + 1) % n_cores;
        prop_assert!(m.apply_placement(&dests) >= 1);

        let snap = MultiCoreSnapshot::capture(&m, blob.clone());
        let bytes = snap.to_bytes();
        let parsed = MultiCoreSnapshot::from_bytes(&bytes).expect("own bytes must parse");
        prop_assert_eq!(parsed.alloc_state(), &blob[..], "allocator blob corrupted");
        prop_assert_eq!(parsed.to_bytes(), bytes, "container round-trip not bit-identical");

        let mut restored = parsed.restore();
        m.run(post, &mut ch);
        restored.run(post, &mut ch);
        m.check_invariants();
        restored.check_invariants();
        prop_assert_eq!(m.counter_snapshot(), restored.counter_snapshot());
        prop_assert_eq!(m.placement(), restored.placement());
        prop_assert_eq!(m.migrations(), restored.migrations());
    }
}
