//! Property-based tests for the observability primitives: the event ring
//! and the metrics registry must uphold their contracts for arbitrary
//! push/increment sequences, not just the unit-test cases.

use proptest::prelude::*;
use smt_sim::obs::{EventRing, MetricsRegistry};

proptest! {
    /// Wraparound keeps exactly the newest `min(cap, n)` items, in push
    /// order, and accounts for every push in `recorded`.
    #[test]
    fn ring_wraparound_preserves_newest_n_ordering(
        cap in 1usize..64,
        items in prop::collection::vec(0u64..10_000, 0..200),
    ) {
        let mut ring = EventRing::new(cap);
        for &x in &items {
            ring.push(x);
        }
        prop_assert_eq!(ring.recorded, items.len() as u64);
        let keep = items.len().min(cap);
        prop_assert_eq!(ring.len(), keep);
        prop_assert_eq!(ring.dropped(), (items.len() - keep) as u64);
        let newest: Vec<u64> = items[items.len() - keep..].to_vec();
        let retained: Vec<u64> = ring.iter().copied().collect();
        prop_assert_eq!(retained, newest);
    }

    /// Counters are monotone: across any increment schedule, successive
    /// snapshots never decrease anywhere, and the final snapshot equals
    /// the per-counter sums.
    #[test]
    fn counter_snapshots_are_monotone(
        n_counters in 1usize..6,
        incs in prop::collection::vec((0usize..6, 0u64..1000), 0..100),
    ) {
        let mut reg = MetricsRegistry::new();
        let ids: Vec<_> = (0..n_counters)
            .map(|i| reg.counter(&format!("c{i}")))
            .collect();
        let mut sums = vec![0u64; n_counters];
        let mut prev = reg.snapshot();
        for &(slot, by) in &incs {
            let k = slot % n_counters;
            reg.inc(ids[k], by);
            sums[k] += by;
            let snap = reg.snapshot();
            for (a, b) in prev.counters.iter().zip(&snap.counters) {
                prop_assert!(b >= a, "counter went backwards: {a} -> {b}");
            }
            prev = snap;
        }
        for (id, want) in ids.iter().zip(&sums) {
            prop_assert_eq!(reg.counter_value(*id), *want);
        }
    }

    /// `snapshot_into` reuse agrees with a fresh `snapshot` regardless of
    /// what the reused buffer previously held.
    #[test]
    fn snapshot_into_matches_fresh_snapshot(
        incs in prop::collection::vec((0usize..4, 0u64..100), 0..50),
        warm in prop::collection::vec((0usize..4, 0u64..100), 0..50),
    ) {
        let mut reg = MetricsRegistry::new();
        let ids: Vec<_> = (0..4).map(|i| reg.counter(&format!("c{i}"))).collect();
        // Dirty the reusable buffer with an unrelated state first.
        let mut reused = Default::default();
        for &(slot, by) in &warm {
            reg.inc(ids[slot % 4], by);
        }
        reg.snapshot_into(&mut reused);
        for &(slot, by) in &incs {
            reg.inc(ids[slot % 4], by);
        }
        reg.snapshot_into(&mut reused);
        prop_assert_eq!(reused, reg.snapshot());
    }
}
