//! Differential property tests for event-horizon cycle skipping.
//!
//! The fast-forward engine (`SmtMachine::stall_horizon` /
//! `skip_cycles`) claims to be *bit-identical* to cycle-by-cycle
//! stepping: every skipped window is pure stall, and every per-cycle
//! effect those cycles would have had (stall accounting, decay,
//! LSQ-full charges, slot attribution) is applied in closed form. These
//! tests run two timelines of the same machine — one with skipping
//! enabled, one pinned to single-stepping — through random mixes,
//! random run-length chunking, and flush/replace/migration churn, and
//! demand byte-identical serialized state plus equal counter and
//! attribution snapshots at every comparison point.
//!
//! A final deterministic test guards against the vacuous-pass failure
//! mode: on a memory-bound mix the skip engine must actually engage
//! (fast-forward a nontrivial share of the run), so the equalities
//! above are comparing a genuinely skipped timeline.

use proptest::prelude::*;
use smt_isa::Tid;
use smt_sim::snapshot::MachineSnapshot;
use smt_sim::{MultiCoreMachine, MultiCoreSnapshot, RoundRobin, SimConfig, SmtMachine};
use smt_workloads::mix;

fn machine_pair(mix_id: usize, threads: usize, seed: u64) -> (SmtMachine, SmtMachine) {
    let m = mix(mix_id).take_threads(threads, 1);
    let mut fast = SmtMachine::new(SimConfig::with_threads(threads), m.streams(seed));
    fast.set_skip_enabled(true);
    let mut slow = fast.clone();
    slow.set_skip_enabled(false);
    (fast, slow)
}

/// Byte-level equality of the two timelines' full serialized state.
fn assert_bit_identical(fast: &SmtMachine, slow: &SmtMachine) {
    assert_eq!(fast.cycle(), slow.cycle());
    assert_eq!(fast.counter_snapshot(), slow.counter_snapshot());
    assert_eq!(
        MachineSnapshot::capture(fast).to_bytes(),
        MachineSnapshot::capture(slow).to_bytes(),
        "skip-on and skip-off timelines diverged at the state level"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Skip-on ≡ skip-off over random mixes, thread counts, and run
    /// chunkings (chunk boundaries land mid-stall-window, so partial
    /// skips to `end` are exercised too).
    #[test]
    fn skip_matches_stepping_on_random_mixes(
        mix_id in 1usize..14,
        threads in 1usize..6,
        seed in 0u64..1_000,
        chunks in prop::collection::vec(1u64..3_000, 1..6),
    ) {
        let (mut fast, mut slow) = machine_pair(mix_id, threads, seed);
        for c in chunks {
            fast.run(c, &mut RoundRobin);
            slow.run(c, &mut RoundRobin);
            assert_bit_identical(&fast, &slow);
        }
        fast.check_invariants();
    }

    /// Skip-on ≡ skip-off under flush/replace/migration/fetch-toggle
    /// churn: every event perturbs the stall bookkeeping the horizon is
    /// computed from (redirects, cold-frontend penalties, parked
    /// threads) between random-length bursts.
    #[test]
    fn skip_matches_stepping_under_churn(
        seed in 0u64..1_000,
        events in prop::collection::vec((0u64..4, 0u8..4, 1u64..2_000, 0u64..300), 1..8),
    ) {
        let (mut fast, mut slow) = machine_pair(13, 4, seed);
        let mut replaced = 0u64;
        for (t, kind, burst, penalty) in events {
            let tid = Tid(t as u8);
            match kind {
                0 => {
                    fast.flush_thread(tid);
                    slow.flush_thread(tid);
                }
                1 => {
                    replaced += 1;
                    let s = mix(11).take_threads(1, replaced).streams(seed ^ replaced);
                    fast.replace_thread(tid, s[0].clone(), penalty);
                    let s = mix(11).take_threads(1, replaced).streams(seed ^ replaced);
                    slow.replace_thread(tid, s[0].clone(), penalty);
                }
                2 => {
                    // Out-and-back migration: pays the cold-frontend
                    // penalty, the `migration_stall_until` horizon term.
                    let th = fast.migrate_out(tid);
                    fast.migrate_in(tid, th, penalty);
                    let th = slow.migrate_out(tid);
                    slow.migrate_in(tid, th, penalty);
                }
                _ => {
                    let on = fast.fetch_enabled(tid);
                    fast.set_fetch_enabled(tid, !on);
                    slow.set_fetch_enabled(tid, !on);
                }
            }
            fast.run(burst, &mut RoundRobin);
            slow.run(burst, &mut RoundRobin);
            assert_bit_identical(&fast, &slow);
        }
        fast.check_invariants();
    }

    /// With slot attribution live, the closed-form skipped-cycle
    /// classification must equal the per-cycle one — same stacks, same
    /// conservation — on top of the architectural bit-identity.
    #[test]
    fn skip_matches_stepping_with_attribution(
        mix_id in 1usize..14,
        threads in 2usize..5,
        seed in 0u64..500,
        chunks in prop::collection::vec(1u64..2_000, 1..4),
    ) {
        let (mut fast, mut slow) = machine_pair(mix_id, threads, seed);
        fast.enable_attr();
        slow.enable_attr();
        for c in chunks {
            fast.run(c, &mut RoundRobin);
            slow.run(c, &mut RoundRobin);
            assert_eq!(fast.counter_snapshot(), slow.counter_snapshot());
            assert_eq!(
                fast.attr().expect("attr enabled").snapshot(),
                slow.attr().expect("attr enabled").snapshot(),
                "skipped-cycle attribution diverged from per-cycle"
            );
        }
        assert!(fast.disable_attr().is_some());
        assert_bit_identical(&fast, &slow);
    }

    /// Multi-core: all-cores-stalled windows skip in lockstep and the
    /// machine state (cores, shared L2, placement) stays byte-identical
    /// to per-cycle rotation stepping, across placement churn.
    #[test]
    fn multicore_skip_matches_stepping(
        seed in 0u64..500,
        chunks in prop::collection::vec(1u64..2_000, 1..4),
        swap in 0u8..2,
    ) {
        let build = || {
            let cores = (0..2)
                .map(|c| {
                    let m = mix(13).take_threads(2, c + 1);
                    SmtMachine::new(SimConfig::with_threads(2), m.streams(seed + c))
                })
                .collect();
            MultiCoreMachine::from_cores(cores, vec![(0, 0), (0, 1), (1, 0), (1, 1)], 64)
        };
        let mut fast = build();
        fast.set_skip_enabled(true);
        let mut slow = build();
        slow.set_skip_enabled(false);
        let mut choosers = [RoundRobin, RoundRobin];
        for (i, c) in chunks.into_iter().enumerate() {
            if i == 1 && swap == 1 {
                // Capacity-preserving cross-migration of threads 1 and 2.
                let placement = [0, 1, 0, 1];
                fast.apply_placement(&placement);
                slow.apply_placement(&placement);
            }
            fast.run(c, &mut choosers);
            slow.run(c, &mut choosers);
            assert_eq!(fast.cycle(), slow.cycle());
            assert_eq!(fast.counter_snapshot(), slow.counter_snapshot());
            assert_eq!(
                MultiCoreSnapshot::capture(&fast, Vec::new()).to_bytes(),
                MultiCoreSnapshot::capture(&slow, Vec::new()).to_bytes(),
                "multi-core skip diverged from rotation stepping"
            );
        }
        fast.check_invariants();
    }
}

/// Anti-vacuity guard: on the memory-bound mix the engine must actually
/// fast-forward a meaningful share of the run — otherwise every
/// differential test above passes trivially with the horizon never
/// firing.
#[test]
fn skip_engages_on_memory_bound_mix() {
    let (mut fast, mut slow) = machine_pair(13, 8, 42);
    fast.run(100_000, &mut RoundRobin);
    slow.run(100_000, &mut RoundRobin);
    assert_bit_identical(&fast, &slow);
    assert_eq!(slow.skipped_cycles(), 0, "skip-off machine must not skip");
    assert!(
        fast.skipped_cycles() > 10_000,
        "skip engine barely engaged on MIX13: {} of 100000 cycles",
        fast.skipped_cycles()
    );
}
