//! Property tests for warm-state checkpointing: resuming a machine from a
//! serialized [`MachineSnapshot`] must be indistinguishable — bit for bit —
//! from never having stopped it.
//!
//! The unit tests in `snapshot.rs` pin the fixed canonical cases; here the
//! thread count, seed, split point and continuation length are all random,
//! and the final comparison is the strongest available: the full serialized
//! machine state of the two timelines must be byte-identical.

use proptest::prelude::*;
use smt_isa::Tid;
use smt_sim::snapshot::MachineSnapshot;
use smt_sim::{RoundRobin, SimConfig, SmtMachine};
use smt_workloads::UopStream;
use std::sync::Arc;

fn test_machine(n: usize, seed: u64) -> SmtMachine {
    let cfg = SimConfig::with_threads(n);
    let streams = (0..n)
        .map(|i| {
            UopStream::new(
                Arc::new(smt_isa::AppProfile::builder("t").build()),
                seed + i as u64,
                smt_workloads::thread_addr_base(i),
            )
        })
        .collect();
    SmtMachine::new(cfg, streams)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// snapshot → binary round trip → restore → N cycles ≡ N cycles
    /// uninterrupted, at a random split point of a random machine.
    #[test]
    fn restored_machine_is_bit_identical_to_uninterrupted(
        n in 1usize..5,
        seed in 0u64..1_000,
        pre in 1u64..4_000,
        post in 1u64..4_000,
    ) {
        let mut live = test_machine(n, seed);
        live.run(pre, &mut RoundRobin);

        let bytes = MachineSnapshot::capture(&live).to_bytes();
        let snap = MachineSnapshot::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(snap.cycle(), live.cycle());
        let mut resumed = snap.restore();
        resumed.check_invariants();

        live.run(post, &mut RoundRobin);
        resumed.run(post, &mut RoundRobin);

        prop_assert_eq!(live.cycle(), resumed.cycle());
        prop_assert_eq!(live.counter_snapshot(), resumed.counter_snapshot());
        // The decisive check: both timelines serialize to the same bytes.
        prop_assert_eq!(
            MachineSnapshot::capture(&live).to_bytes(),
            MachineSnapshot::capture(&resumed).to_bytes(),
            "continuations diverged at the state level"
        );
    }

    /// Snapshots survive flush/replace/fetch-toggle churn before the split:
    /// whatever in-flight shape the machine is in, the checkpoint captures
    /// it exactly.
    #[test]
    fn snapshot_is_exact_after_flush_replace_churn(
        seed in 0u64..1_000,
        events in prop::collection::vec((0u64..4, 0u8..3, 1u64..60), 1..8),
        post in 1u64..2_000,
    ) {
        let mut live = test_machine(4, seed);
        let mut replaced = 0u64;
        for (t, kind, burst) in events {
            let tid = Tid(t as u8);
            match kind {
                0 => live.flush_thread(tid),
                1 => {
                    replaced += 1;
                    let s = UopStream::new(
                        Arc::new(smt_isa::AppProfile::builder("t").build()),
                        seed ^ (0xF00D + replaced),
                        smt_workloads::thread_addr_base(t as usize),
                    );
                    live.replace_thread(tid, s, replaced % 7);
                }
                _ => {
                    let on = live.fetch_enabled(tid);
                    live.set_fetch_enabled(tid, !on);
                }
            }
            live.run(burst, &mut RoundRobin);
        }

        let bytes = MachineSnapshot::capture(&live).to_bytes();
        let mut resumed = MachineSnapshot::from_bytes(&bytes).expect("decode").restore();
        resumed.check_invariants();

        live.run(post, &mut RoundRobin);
        resumed.run(post, &mut RoundRobin);
        prop_assert_eq!(live.counter_snapshot(), resumed.counter_snapshot());
        prop_assert_eq!(
            MachineSnapshot::capture(&live).to_bytes(),
            MachineSnapshot::capture(&resumed).to_bytes(),
            "post-churn continuations diverged at the state level"
        );
    }
}
