//! Property-based tests on the machine's structural models.

use proptest::prelude::*;
use smt_isa::{BranchKind, Tid};
use smt_sim::{BranchPredictor, Cache, CacheGeometry, Hierarchy, SimConfig};

fn arb_geom() -> impl Strategy<Value = CacheGeometry> {
    (5u32..8, 0u32..4, 1u32..4).prop_map(|(log_line, log_ways, log_sets_extra)| {
        let line_bytes = 1usize << log_line;
        let ways = 1usize << log_ways;
        let sets = 1usize << (log_sets_extra + 2);
        CacheGeometry {
            size_bytes: sets * ways * line_bytes,
            line_bytes,
            ways,
            hit_latency: 1,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn cache_access_is_idempotent_hit(geom in arb_geom(), addr in 0u64..1_000_000) {
        let mut c = Cache::new(geom);
        let _ = c.access(addr);
        prop_assert!(c.access(addr), "second access to same line must hit");
        prop_assert!(c.contains(addr));
    }

    #[test]
    fn cache_same_line_aliases(geom in arb_geom(), addr in 0u64..1_000_000, off in 0u64..64) {
        let mut c = Cache::new(geom);
        let line = geom.line_bytes as u64;
        let base = addr & !(line - 1);
        let _ = c.access(base);
        prop_assert!(c.access(base + (off % line)), "same-line access must hit");
    }

    #[test]
    fn cache_holds_at_least_ways_distinct_lines_per_set(geom in arb_geom(), base in 0u64..4096) {
        // Accessing exactly `ways` lines that map to the same set must not
        // evict any of them (LRU with capacity = ways).
        let mut c = Cache::new(geom);
        let set_stride = (geom.size_bytes / geom.ways) as u64;
        let aligned = base & !(geom.line_bytes as u64 - 1);
        for w in 0..geom.ways as u64 {
            c.access(aligned + w * set_stride);
        }
        for w in 0..geom.ways as u64 {
            prop_assert!(c.contains(aligned + w * set_stride), "way {w} evicted");
        }
    }

    #[test]
    fn cache_miss_count_bounded_by_accesses(geom in arb_geom(), addrs in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut c = Cache::new(geom);
        for a in &addrs {
            let _ = c.access(*a);
        }
        prop_assert_eq!(c.accesses, addrs.len() as u64);
        prop_assert!(c.misses <= c.accesses);
        prop_assert!((0.0..=1.0).contains(&c.miss_ratio()));
    }

    #[test]
    fn hierarchy_l2_catches_l1_evictions(addr in 0u64..1_000_000) {
        let small = CacheGeometry { size_bytes: 512, line_bytes: 64, ways: 2, hit_latency: 1 };
        let big = CacheGeometry { size_bytes: 64 << 10, line_bytes: 64, ways: 8, hit_latency: 10 };
        let mut h = Hierarchy::new(small, small, big, 80);
        let _ = h.data(addr);
        // Thrash L1 with conflicting lines.
        for i in 1..=2u64 {
            let _ = h.data(addr ^ (i * 256));
        }
        let r = h.data(addr);
        prop_assert!(!r.l2_miss, "L2 must retain a recently-filled line");
    }

    #[test]
    fn predictor_trains_toward_constant_direction(
        pc in 0u64..100_000,
        taken in any::<bool>(),
        reps in 4u32..32,
    ) {
        let mut p = BranchPredictor::new(&SimConfig::default());
        let mut last = None;
        for _ in 0..reps {
            let pr = p.predict(Tid(0), pc * 4, BranchKind::Conditional, taken, true);
            p.train(pc * 4, pr.pht_index, taken);
            last = Some(pr.taken);
        }
        // After ≥4 consistent trainings, prediction matches the direction.
        prop_assert_eq!(last, Some(taken));
    }

    #[test]
    fn history_repair_restores_exact_register(
        pc in 0u64..10_000,
        hist_bits in prop::collection::vec(any::<bool>(), 0..12),
    ) {
        let mut p = BranchPredictor::new(&SimConfig::default());
        for b in &hist_bits {
            let _ = p.predict(Tid(1), pc * 4, BranchKind::Conditional, *b, true);
        }
        let pr = p.predict(Tid(1), pc * 4 + 8, BranchKind::Conditional, true, true);
        // Garbage wrong-path updates...
        for _ in 0..7 {
            let _ = p.predict(Tid(1), pc * 4 + 16, BranchKind::Conditional, false, false);
        }
        // ...then the squash repair: history must equal fetch-time value
        // plus the architectural outcome bit.
        p.repair_history(Tid(1), pr.history_at_fetch, Some(true));
        let after = p.predict(Tid(1), pc * 4 + 8, BranchKind::Conditional, true, true);
        prop_assert_eq!(
            after.history_at_fetch,
            ((pr.history_at_fetch << 1) | 1) & ((1 << 12) - 1)
        );
    }
}
