//! Scalar aggregation helpers.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice; requires positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Sample standard deviation (n-1); 0 for fewer than two samples.
pub fn stdev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Half-width of a normal-approximation 95% confidence interval.
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * stdev(xs) / (xs.len() as f64).sqrt()
}

/// Five-number summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub stdev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            stdev: stdev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_leq_mean() {
        let xs = [0.5, 2.0, 8.0, 1.0];
        assert!(geomean(&xs) <= mean(&xs));
    }

    #[test]
    fn stdev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stdev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(stdev(&[1.0]), 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = [1.0, 2.0, 3.0, 4.0];
        let big: Vec<f64> = small.iter().cycle().take(64).copied().collect();
        assert!(ci95_half_width(&big) < ci95_half_width(&small));
    }

    #[test]
    fn summary_of() {
        let s = Summary::of(&[1.0, 3.0, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
    }
}
