//! Fixed-bin histograms for per-quantum metric distributions.
//!
//! The mean hides exactly what adaptive scheduling is about — transient
//! low-throughput quanta — so the experiment reports also look at the
//! distribution of per-quantum IPC: how heavy the low tail is, and how the
//! adaptive scheduler reshapes it.

/// A histogram over `[lo, hi)` with equal-width bins; out-of-range samples
/// clamp into the edge bins.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    n: u64,
    sum: f64,
}

impl Histogram {
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "empty range");
        assert!(bins > 0, "zero bins");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            n: 0,
            sum: 0.0,
        }
    }

    /// Index of the bin `x` falls into (clamped).
    fn bin_of(&self, x: f64) -> usize {
        let b = self.counts.len() as f64;
        let t = ((x - self.lo) / (self.hi - self.lo) * b).floor();
        (t.max(0.0) as usize).min(self.counts.len() - 1)
    }

    pub fn add(&mut self, x: f64) {
        let i = self.bin_of(x);
        self.counts[i] += 1;
        self.n += 1;
        self.sum += x;
    }

    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    /// Lower bound of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Per-bin sample counts, lowest bin first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of every sample added (clamping does not alter the sum).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Upper edge of bin `i` (the `le` bound Prometheus-style exporters
    /// label buckets with).
    pub fn upper_edge(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 1.0) * width
    }

    /// Whether `other` has the same range and bin count.
    pub fn same_geometry(&self, other: &Histogram) -> bool {
        self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len()
    }

    /// Fold `other`'s samples into `self` bin-by-bin. The bin counts of a
    /// merge are exact (plain `u64` adds, so merging is associative and
    /// commutative); the float `sum` accumulates in call order and is only
    /// reproducible up to rounding. Panics on geometry mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.same_geometry(other),
            "merging histograms of different geometry"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
        self.sum += other.sum;
    }

    /// Overwrite `self` with `other`'s state, reusing the existing counts
    /// buffer when the bin count matches — the zero-allocation path
    /// snapshot loops rely on.
    pub fn copy_from(&mut self, other: &Histogram) {
        self.lo = other.lo;
        self.hi = other.hi;
        if self.counts.len() == other.counts.len() {
            self.counts.copy_from_slice(&other.counts);
        } else {
            self.counts.clear();
            self.counts.extend_from_slice(&other.counts);
        }
        self.n = other.n;
        self.sum = other.sum;
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Fraction of samples at or below `x` (by bin resolution).
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let upto = self.bin_of(x);
        let c: u64 = self.counts[..=upto].iter().sum();
        c as f64 / self.n as f64
    }

    /// Approximate quantile (bin midpoint), `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.n == 0 {
            return self.lo;
        }
        let target = (q * self.n as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.lo + (i as f64 + 0.5) * width;
            }
        }
        self.hi
    }

    /// One-line ASCII rendering (eight shade levels per bin).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    ' '
                } else {
                    LEVELS[((c * 7) / max) as usize]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_mean() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([1.0, 2.0, 3.0]);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_at_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[3], 1);
    }

    #[test]
    fn cdf_monotone() {
        let mut h = Histogram::new(0.0, 8.0, 16);
        h.extend((0..100).map(|i| (i % 8) as f64));
        let mut last = 0.0;
        for x in [0.5, 2.0, 4.0, 6.0, 7.9] {
            let c = h.cdf_at(x);
            assert!(c >= last, "cdf not monotone at {x}");
            last = c;
        }
        assert!((h.cdf_at(7.9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_bracket_distribution() {
        let mut h = Histogram::new(0.0, 10.0, 100);
        h.extend((0..1000).map(|i| (i % 10) as f64));
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
        let med = h.quantile(0.5);
        assert!((3.0..6.5).contains(&med), "median {med}");
    }

    #[test]
    fn sparkline_length_matches_bins() {
        let mut h = Histogram::new(0.0, 1.0, 12);
        h.add(0.5);
        assert_eq!(h.sparkline().chars().count(), 12);
    }

    #[test]
    #[should_panic]
    fn bad_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn merge_folds_counts_and_sum() {
        let mut a = Histogram::new(0.0, 4.0, 4);
        a.extend([0.5, 1.5]);
        let mut b = Histogram::new(0.0, 4.0, 4);
        b.extend([1.5, 3.5]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.counts(), &[1, 2, 0, 1]);
        assert!((a.sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_geometry_mismatch() {
        let mut a = Histogram::new(0.0, 4.0, 4);
        let b = Histogram::new(0.0, 4.0, 8);
        a.merge(&b);
    }

    #[test]
    fn copy_from_reuses_buffer_and_matches() {
        let mut src = Histogram::new(0.0, 8.0, 8);
        src.extend([1.0, 2.0, 7.5]);
        let mut dst = Histogram::new(0.0, 1.0, 8);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        // Different bin count still works (reallocates).
        let mut other = Histogram::new(0.0, 1.0, 3);
        other.copy_from(&src);
        assert_eq!(other, src);
    }

    #[test]
    fn upper_edges_partition_the_range() {
        let h = Histogram::new(0.0, 8.0, 4);
        assert_eq!(h.upper_edge(0), 2.0);
        assert_eq!(h.upper_edge(3), 8.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.cdf_at(0.5), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }
}
