//! # smt-stats
//!
//! Small, dependency-light statistics and reporting toolkit for the
//! SMT-ADTS experiments: per-quantum time series ([`series`]), scalar
//! aggregation ([`agg`]) and plain-text/CSV table rendering ([`table`]).
//! The repro harness prints exactly the rows the paper plots, so every
//! figure can be regenerated from a terminal.

pub mod agg;
pub mod hist;
pub mod series;
pub mod stack;
pub mod table;
pub mod timeline;

pub use agg::{ci95_half_width, geomean, mean, stdev, Summary};
pub use hist::Histogram;
pub use series::{QuantumRecord, RunSeries, SwitchEvent};
pub use stack::{dominant, percent, percent_cell, shares};
pub use table::{write_csv, Table};
pub use timeline::{policy_char, render_timeline};
