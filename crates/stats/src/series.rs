//! Per-quantum time series of one simulation run.

use serde::{Deserialize, Serialize};

/// Metrics of one scheduling quantum.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantumRecord {
    /// Quantum index from run start.
    pub index: u64,
    /// Name of the fetch policy in force at the *end* of the quantum.
    pub policy: String,
    /// Cycles simulated in this quantum.
    pub cycles: u64,
    /// Micro-ops committed in this quantum (all threads).
    pub committed: u64,
    /// Committed IPC of this quantum.
    pub ipc: f64,
    /// L1 (I+D) misses per cycle.
    pub l1_miss_rate: f64,
    /// Fraction of cycles the LSQ was full.
    pub lsq_full_rate: f64,
    /// Branch mispredicts per cycle.
    pub mispredict_rate: f64,
    /// Conditional branches fetched per cycle.
    pub branch_rate: f64,
    /// Unused fetch slots per cycle (the detector thread's budget).
    pub idle_fetch_rate: f64,
}

/// One policy-switch event, with its observed quality.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwitchEvent {
    /// Quantum index at whose boundary the switch was decided.
    pub quantum: u64,
    pub from: String,
    pub to: String,
    /// `Some(true)` if the following quantum's IPC improved (a *benign*
    /// switch, the paper's quality criterion), `Some(false)` if it fell
    /// (*malignant*), `None` if the run ended before the outcome was known.
    pub benign: Option<bool>,
}

/// The full record of one run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSeries {
    pub quanta: Vec<QuantumRecord>,
    pub switches: Vec<SwitchEvent>,
}

impl RunSeries {
    /// Aggregate IPC over the whole run (committed / cycles).
    pub fn aggregate_ipc(&self) -> f64 {
        let cycles: u64 = self.quanta.iter().map(|q| q.cycles).sum();
        let committed: u64 = self.quanta.iter().map(|q| q.committed).sum();
        if cycles == 0 {
            0.0
        } else {
            committed as f64 / cycles as f64
        }
    }

    /// Number of switches whose outcome was observed.
    pub fn judged_switches(&self) -> usize {
        self.switches.iter().filter(|s| s.benign.is_some()).count()
    }

    /// Fraction of judged switches that were benign (`None` if no switch
    /// was judged).
    pub fn benign_fraction(&self) -> Option<f64> {
        let judged = self.judged_switches();
        if judged == 0 {
            return None;
        }
        let benign = self
            .switches
            .iter()
            .filter(|s| s.benign == Some(true))
            .count();
        Some(benign as f64 / judged as f64)
    }

    /// Switches per quantum (the paper's Fig 7 x-axis normalization).
    pub fn switch_rate(&self) -> f64 {
        if self.quanta.is_empty() {
            0.0
        } else {
            self.switches.len() as f64 / self.quanta.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(index: u64, cycles: u64, committed: u64) -> QuantumRecord {
        QuantumRecord {
            index,
            policy: "ICOUNT".into(),
            cycles,
            committed,
            ipc: committed as f64 / cycles as f64,
            l1_miss_rate: 0.0,
            lsq_full_rate: 0.0,
            mispredict_rate: 0.0,
            branch_rate: 0.0,
            idle_fetch_rate: 0.0,
        }
    }

    #[test]
    fn aggregate_ipc_weights_by_cycles() {
        let s = RunSeries {
            quanta: vec![q(0, 100, 100), q(1, 300, 900)],
            switches: vec![],
        };
        // (100+900)/(100+300) = 2.5, not the mean of 1.0 and 3.0.
        assert!((s.aggregate_ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_zero() {
        assert_eq!(RunSeries::default().aggregate_ipc(), 0.0);
        assert_eq!(RunSeries::default().switch_rate(), 0.0);
        assert_eq!(RunSeries::default().benign_fraction(), None);
    }

    #[test]
    fn benign_fraction_ignores_unjudged() {
        let s = RunSeries {
            quanta: vec![q(0, 1, 1)],
            switches: vec![
                SwitchEvent {
                    quantum: 0,
                    from: "A".into(),
                    to: "B".into(),
                    benign: Some(true),
                },
                SwitchEvent {
                    quantum: 1,
                    from: "B".into(),
                    to: "A".into(),
                    benign: Some(false),
                },
                SwitchEvent {
                    quantum: 2,
                    from: "A".into(),
                    to: "B".into(),
                    benign: None,
                },
            ],
        };
        assert_eq!(s.judged_switches(), 2);
        assert_eq!(s.benign_fraction(), Some(0.5));
        assert_eq!(s.switch_rate(), 3.0);
    }
}
