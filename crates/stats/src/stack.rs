//! Share arithmetic for stacked breakdowns (CPI / slot-loss stacks).
//!
//! A slot-accounting stack is a vector of category counts that sums to a
//! known budget (cycles × stage width). Rendering one as a table needs the
//! same two operations everywhere: each category's share of the stack, and
//! a percentage formatted to a fixed precision. Centralizing them keeps
//! every explain table on identical rounding rules.

/// Fraction of `total` each count represents; all zeros when the stack is
/// empty (no slots observed is rendered as 0%, not NaN).
pub fn shares(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// `part` as a percentage of `whole` (0 when `whole` is 0).
pub fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Render a share as a fixed-width percentage cell, e.g. `12.3%`.
pub fn percent_cell(share: f64) -> String {
    format!("{:.1}%", 100.0 * share)
}

/// Index of the largest count (ties go to the earliest category); `None`
/// for an all-zero stack.
pub fn dominant(counts: &[u64]) -> Option<usize> {
    let (idx, &max) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))?;
    (max > 0).then_some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let s = shares(&[1, 3, 4]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(s[2], 0.5);
    }

    #[test]
    fn empty_stack_has_zero_shares() {
        assert_eq!(shares(&[0, 0]), vec![0.0, 0.0]);
        assert_eq!(percent(0, 0), 0.0);
    }

    #[test]
    fn percent_and_cell() {
        assert_eq!(percent(1, 4), 25.0);
        assert_eq!(percent_cell(0.125), "12.5%");
    }

    #[test]
    fn dominant_prefers_earliest_on_ties() {
        assert_eq!(dominant(&[0, 5, 5, 1]), Some(1));
        assert_eq!(dominant(&[0, 0]), None);
        assert_eq!(dominant(&[]), None);
    }
}
