//! Plain-text table rendering and CSV output.
//!
//! The repro harness prints the same rows the paper's figures plot; the
//! renderer right-aligns numeric columns and pads headers, which is all the
//! formatting the terminal needs.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
///
/// ```
/// use smt_stats::Table;
/// let mut t = Table::new("demo", &["policy", "ipc"]);
/// t.row(vec!["ICOUNT".into(), "2.554".into()]);
/// assert!(t.render().contains("ICOUNT"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string (title, rule, headers, rows).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "-".repeat(total.max(self.title.len())));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Write the table as CSV (headers + rows) to `path`.
    pub fn to_csv(&self, path: &Path) -> io::Result<()> {
        let mut body = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        body.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        body.push('\n');
        for row in &self.rows {
            body.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            body.push('\n');
        }
        std::fs::write(path, body)
    }
}

/// Write arbitrary rows as CSV; convenience for non-[`Table`] outputs.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut t = Table::new("", headers);
    for r in rows {
        t.row(r.clone());
    }
    t.to_csv(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["name", "ipc"]);
        t.row(vec!["ICOUNT".into(), "2.41".into()]);
        t.row(vec!["RR".into(), "1.9".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // "name" is padded to width 6 ("ICOUNT"), "ipc" to width 4 ("2.41").
        assert_eq!(lines[2], "  name   ipc");
        assert!(lines[3].contains("ICOUNT"));
        // Cells right-aligned to equal width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let dir = std::env::temp_dir().join("smt_stats_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        t.to_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("smt_stats_test_csv2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        write_csv(&path, &["h"], &[vec!["1".into()], vec!["2".into()]]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "h\n1\n2\n");
    }

    #[test]
    fn counts() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.n_rows(), 1);
    }
}
