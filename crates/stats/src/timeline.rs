//! ASCII timeline rendering of a [`RunSeries`]: per-quantum IPC as a
//! sparkline with the active fetch policy as a track underneath — the
//! quickest way to *see* a policy switch paying off (or not).

use crate::series::RunSeries;

/// Single-character code for a policy name (the adaptive triple gets
/// stable letters; anything else shows as its initial).
pub fn policy_char(name: &str) -> char {
    match name {
        "ICOUNT" => 'I',
        "BRCOUNT" => 'B',
        "L1MISSCOUNT" => 'M',
        "RR" => 'R',
        other => other.chars().next().unwrap_or('?'),
    }
}

/// Render the series as three lines: IPC sparkline, policy track, switch
/// markers (`^` benign, `!` malignant, `?` unjudged).
pub fn render_timeline(series: &RunSeries) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.quanta.is_empty() {
        return String::from("(empty series)\n");
    }
    let max = series
        .quanta
        .iter()
        .map(|q| q.ipc)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let ipc_line: String = series
        .quanta
        .iter()
        .map(|q| LEVELS[((q.ipc / max * 7.0).round() as usize).min(7)])
        .collect();
    let policy_line: String = series
        .quanta
        .iter()
        .map(|q| policy_char(&q.policy))
        .collect();
    let mut marks = vec![' '; series.quanta.len()];
    for s in &series.switches {
        // The switch decided at quantum q takes effect in q+1.
        let idx = (s.quantum + 1) as usize;
        if idx < marks.len() {
            marks[idx] = match s.benign {
                Some(true) => '^',
                Some(false) => '!',
                None => '?',
            };
        }
    }
    let mark_line: String = marks.into_iter().collect();
    format!("ipc    {ipc_line}  (max {max:.2})\npolicy {policy_line}\nswitch {mark_line}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{QuantumRecord, SwitchEvent};

    fn series() -> RunSeries {
        let q = |index: u64, ipc: f64, policy: &str| QuantumRecord {
            index,
            policy: policy.into(),
            cycles: 100,
            committed: (ipc * 100.0) as u64,
            ipc,
            l1_miss_rate: 0.0,
            lsq_full_rate: 0.0,
            mispredict_rate: 0.0,
            branch_rate: 0.0,
            idle_fetch_rate: 0.0,
        };
        RunSeries {
            quanta: vec![
                q(0, 1.0, "ICOUNT"),
                q(1, 2.0, "BRCOUNT"),
                q(2, 0.5, "L1MISSCOUNT"),
            ],
            switches: vec![SwitchEvent {
                quantum: 0,
                from: "ICOUNT".into(),
                to: "BRCOUNT".into(),
                benign: Some(true),
            }],
        }
    }

    #[test]
    fn renders_three_lines() {
        let out = render_timeline(&series());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("IBM"), "policy track: {}", lines[1]);
        assert!(lines[2].contains('^'), "benign mark missing: {}", lines[2]);
    }

    #[test]
    fn empty_series() {
        assert!(render_timeline(&RunSeries::default()).contains("empty"));
    }

    #[test]
    fn policy_chars() {
        assert_eq!(policy_char("ICOUNT"), 'I');
        assert_eq!(policy_char("BRCOUNT"), 'B');
        assert_eq!(policy_char("L1MISSCOUNT"), 'M');
        assert_eq!(policy_char("STALLCOUNT"), 'S');
    }
}
