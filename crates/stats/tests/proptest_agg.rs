//! Property-based tests on the aggregation helpers.

use proptest::prelude::*;
use smt_stats::{ci95_half_width, geomean, mean, stdev, Summary};

proptest! {
    #[test]
    fn mean_within_min_max(xs in prop::collection::vec(-1e6..1e6f64, 1..100)) {
        let m = mean(&xs);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn geomean_leq_mean_for_positive(xs in prop::collection::vec(0.001..1e4f64, 1..100)) {
        prop_assert!(geomean(&xs) <= mean(&xs) + 1e-9);
    }

    #[test]
    fn stdev_is_nonnegative_and_shift_invariant(
        xs in prop::collection::vec(-1e4..1e4f64, 2..50),
        shift in -1e4..1e4f64,
    ) {
        let s1 = stdev(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let s2 = stdev(&shifted);
        prop_assert!(s1 >= 0.0);
        prop_assert!((s1 - s2).abs() < 1e-6 * (1.0 + s1), "{s1} vs {s2}");
    }

    #[test]
    fn constant_sample_has_zero_spread(v in -1e4..1e4f64, n in 2usize..40) {
        let xs = vec![v; n];
        prop_assert!(stdev(&xs).abs() < 1e-9);
        prop_assert!(ci95_half_width(&xs).abs() < 1e-9);
        let s = Summary::of(&xs);
        prop_assert!((s.min - v).abs() < 1e-12 && (s.max - v).abs() < 1e-12);
    }

    #[test]
    fn summary_consistent(xs in prop::collection::vec(-1e5..1e5f64, 1..80)) {
        let s = Summary::of(&xs);
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
    }
}
