//! Property-based tests for histogram merging: sharded observation (each
//! worker filling its own histogram, merged at the end) must agree with
//! direct observation, and the merge must be associative and commutative.
//!
//! Bin counts and `n` are u64 sums, so they are compared exactly; the
//! float `sum` accumulates in a different order per merge tree, so it is
//! compared within epsilon.

use proptest::prelude::*;
use smt_stats::Histogram;

const LO: f64 = 0.0;
const HI: f64 = 16.0;
const BINS: usize = 8;

fn fill(xs: &[f64]) -> Histogram {
    let mut h = Histogram::new(LO, HI, BINS);
    for &x in xs {
        h.add(x);
    }
    h
}

fn assert_hist_eq(a: &Histogram, b: &Histogram) {
    assert_eq!(a.counts(), b.counts());
    assert_eq!(a.count(), b.count());
    let scale = a.sum().abs().max(1.0);
    assert!(
        (a.sum() - b.sum()).abs() <= 1e-9 * scale,
        "sums diverged beyond rounding: {} vs {}",
        a.sum(),
        b.sum()
    );
}

proptest! {
    /// merge(a, b) sees exactly the observations of a ++ b.
    #[test]
    fn merge_equals_direct_observation(
        xs in prop::collection::vec(-4.0..20.0f64, 0..80),
        split in 0usize..81,
    ) {
        let split = split.min(xs.len());
        let mut merged = fill(&xs[..split]);
        merged.merge(&fill(&xs[split..]));
        assert_hist_eq(&merged, &fill(&xs));
    }

    /// a ∪ b == b ∪ a.
    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(-4.0..20.0f64, 0..60),
        ys in prop::collection::vec(-4.0..20.0f64, 0..60),
    ) {
        let mut ab = fill(&xs);
        ab.merge(&fill(&ys));
        let mut ba = fill(&ys);
        ba.merge(&fill(&xs));
        assert_hist_eq(&ab, &ba);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(-4.0..20.0f64, 0..40),
        ys in prop::collection::vec(-4.0..20.0f64, 0..40),
        zs in prop::collection::vec(-4.0..20.0f64, 0..40),
    ) {
        let mut left = fill(&xs);
        left.merge(&fill(&ys));
        left.merge(&fill(&zs));
        let mut bc = fill(&ys);
        bc.merge(&fill(&zs));
        let mut right = fill(&xs);
        right.merge(&bc);
        assert_hist_eq(&left, &right);
    }
}
