//! Named application profiles calibrated to SPEC CPU2000 program classes.
//!
//! The numbers below are not measurements of SPEC binaries (we have none);
//! they encode the *published character* of each program — instruction mix,
//! branch predictability, working-set size, memory-level parallelism, ILP —
//! at the fidelity the ADTS heuristics observe (counter rates per cycle).
//! Sources for the qualitative placement: the SPEC CPU2000 characterization
//! literature (e.g. Henning, IEEE Computer 33(7)) and the usual folklore
//! the paper itself relies on (mcf/art = memory-bound low-IPC with poor
//! MLP; gcc/perlbmk = branchy with big code; swim/lucas = FP streaming
//! with excellent MLP; crafty/gzip = high-IPC cache-resident).
//!
//! Phase schedules give most applications alternating regimes — branch
//! storms (predictability collapses), memory storms (cold streaming
//! bursts), compute phases — because transient imbalance is the entire
//! reason adaptive scheduling exists (paper §1's scenario of four
//! control-intensive threads "experiencing high branch prediction misses
//! at the moment").

use smt_isa::{AppClass, AppProfile, FootprintClass, IpcClass, Phase};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// Number of named profiles provided by [`app`].
pub const APP_COUNT: usize = 21;

/// All profile names, in a fixed canonical order.
pub fn app_names() -> [&'static str; APP_COUNT] {
    [
        "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "perlbmk", "gap", "vortex", "bzip2",
        "twolf", "wupwise", "swim", "mgrid", "applu", "mesa", "art", "equake", "ammp", "lucas",
        "apsi",
    ]
}

/// Look up a profile by name. Panics on unknown names (profiles are static
/// data; tests enumerate [`app_names`]).
pub fn app(name: &str) -> AppProfile {
    use AppClass as A;
    use FootprintClass as F;
    use IpcClass as I;
    let b = AppProfile::builder(name);
    match name {
        // ---------------- integer ----------------
        "gzip" => b
            .class(A::Int)
            .ipc_class(I::High)
            .footprint(F::Small)
            .branch_frac(0.11)
            .load_frac(0.20)
            .store_frac(0.08)
            .data_ws_bytes(192 * KB)
            .cold_frac(0.015)
            .stride_frac(0.65)
            .code_bytes(8 * KB)
            .branch_bias(0.93)
            .pattern_frac(0.6)
            .mean_dep_dist(3.6)
            .addr_indep_frac(0.7)
            .src_indep_frac(0.3)
            .phases(vec![
                // compress (compute) / flush (memory) alternation
                Phase::neutral(400_000),
                Phase::mem_storm(120_000, 4.0),
            ])
            .build(),
        "vpr" => b
            .class(A::Int)
            .ipc_class(I::Medium)
            .footprint(F::Medium)
            .branch_frac(0.13)
            .load_frac(0.26)
            .store_frac(0.08)
            .data_ws_bytes(2 * MB)
            .cold_frac(0.03)
            .stride_frac(0.35)
            .code_bytes(32 * KB)
            .branch_bias(0.86)
            .pattern_frac(0.35)
            .mean_dep_dist(2.8)
            .phases(vec![
                // annealing: data-dependent accept/reject branch storms
                Phase::branch_storm(220_000, 0.40),
                Phase::neutral(220_000),
            ])
            .build(),
        "gcc" => b
            .class(A::Int)
            .ipc_class(I::Medium)
            .footprint(F::Medium)
            .branch_frac(0.17)
            .jump_frac(0.04)
            .load_frac(0.24)
            .store_frac(0.12)
            .data_ws_bytes(MB)
            .cold_frac(0.04)
            .stride_frac(0.3)
            .code_bytes(256 * KB)
            .branch_bias(0.88)
            .pattern_frac(0.4)
            .mean_dep_dist(2.6)
            .phases(vec![
                // parse (branch storm) / optimize (memory) / codegen
                Phase::branch_storm(260_000, 0.40),
                Phase::mem_storm(200_000, 2.5),
                Phase::neutral(150_000),
            ])
            .build(),
        "mcf" => b
            .class(A::Int)
            .ipc_class(I::Low)
            .footprint(F::Large)
            .branch_frac(0.12)
            .load_frac(0.30)
            .store_frac(0.09)
            .data_ws_bytes(16 * MB)
            .cold_frac(0.30)
            .stride_frac(0.1)
            .code_bytes(4 * KB)
            .branch_bias(0.90)
            .pattern_frac(0.4)
            .mean_dep_dist(1.8)
            .addr_indep_frac(0.15)
            .src_indep_frac(0.15)
            .phases(vec![
                // pointer-chase (pathological) / price-update (milder)
                Phase {
                    len_uops: 250_000,
                    mem_pressure: 1.5,
                    br_pressure: 1.0,
                    ilp_scale: 0.9,
                    predictability: 1.0,
                },
                Phase {
                    len_uops: 120_000,
                    mem_pressure: 0.4,
                    br_pressure: 1.1,
                    ilp_scale: 1.3,
                    predictability: 1.0,
                },
            ])
            .build(),
        "crafty" => b
            .class(A::Int)
            .ipc_class(I::High)
            .footprint(F::Small)
            .branch_frac(0.12)
            .jump_frac(0.03)
            .load_frac(0.24)
            .store_frac(0.07)
            .data_ws_bytes(512 * KB)
            .cold_frac(0.01)
            .stride_frac(0.3)
            .code_bytes(64 * KB)
            .branch_bias(0.91)
            .pattern_frac(0.55)
            .mean_dep_dist(3.8)
            .addr_indep_frac(0.7)
            .src_indep_frac(0.3)
            .phases(vec![
                Phase::neutral(300_000),
                // tactical-search explosions: evaluation branches go random
                Phase::branch_storm(140_000, 0.50),
            ])
            .build(),
        "parser" => b
            .class(A::Int)
            .ipc_class(I::Medium)
            .footprint(F::Medium)
            .branch_frac(0.15)
            .load_frac(0.23)
            .store_frac(0.10)
            .data_ws_bytes(MB)
            .cold_frac(0.05)
            .stride_frac(0.25)
            .code_bytes(48 * KB)
            .branch_bias(0.87)
            .pattern_frac(0.35)
            .mean_dep_dist(2.4)
            .phases(vec![
                // ambiguous-sentence bursts: linkage search backtracks
                Phase::branch_storm(200_000, 0.35),
                Phase::neutral(220_000),
            ])
            .build(),
        "perlbmk" => b
            .class(A::Int)
            .ipc_class(I::Medium)
            .footprint(F::Medium)
            .branch_frac(0.16)
            .jump_frac(0.05)
            .load_frac(0.24)
            .store_frac(0.12)
            .data_ws_bytes(768 * KB)
            .cold_frac(0.02)
            .stride_frac(0.3)
            .code_bytes(384 * KB)
            .branch_bias(0.89)
            .pattern_frac(0.45)
            .mean_dep_dist(2.7)
            .syscall_per_muop(2.0)
            .phases(vec![
                // interpreter-dispatch storms / steady regex / sweeps
                Phase::branch_storm(240_000, 0.45),
                Phase::neutral(250_000),
                Phase::mem_storm(100_000, 2.0),
            ])
            .build(),
        "gap" => b
            .class(A::Int)
            .ipc_class(I::Medium)
            .footprint(F::Medium)
            .branch_frac(0.12)
            .load_frac(0.27)
            .store_frac(0.09)
            .data_ws_bytes(3 * MB)
            .cold_frac(0.04)
            .stride_frac(0.4)
            .code_bytes(96 * KB)
            .branch_bias(0.90)
            .pattern_frac(0.5)
            .mean_dep_dist(3.0)
            .build(),
        "vortex" => b
            .class(A::Int)
            .ipc_class(I::Medium)
            .footprint(F::Large)
            .branch_frac(0.14)
            .jump_frac(0.04)
            .load_frac(0.28)
            .store_frac(0.13)
            .data_ws_bytes(4 * MB)
            .cold_frac(0.05)
            .stride_frac(0.35)
            .code_bytes(512 * KB)
            .branch_bias(0.92)
            .pattern_frac(0.55)
            .mean_dep_dist(2.9)
            .syscall_per_muop(1.0)
            .build(),
        "bzip2" => b
            .class(A::Int)
            .ipc_class(I::High)
            .footprint(F::Medium)
            .branch_frac(0.12)
            .load_frac(0.22)
            .store_frac(0.09)
            .data_ws_bytes(4 * MB)
            .cold_frac(0.03)
            .stride_frac(0.55)
            .code_bytes(8 * KB)
            .branch_bias(0.90)
            .pattern_frac(0.5)
            .mean_dep_dist(3.4)
            .addr_indep_frac(0.7)
            .src_indep_frac(0.3)
            .phases(vec![
                Phase::neutral(350_000),
                Phase {
                    len_uops: 200_000,
                    mem_pressure: 3.0,
                    br_pressure: 1.2,
                    ilp_scale: 0.8,
                    predictability: 1.0,
                },
            ])
            .build(),
        "twolf" => b
            .class(A::Int)
            .ipc_class(I::Low)
            .footprint(F::Medium)
            .branch_frac(0.14)
            .load_frac(0.25)
            .store_frac(0.08)
            .data_ws_bytes(MB)
            .cold_frac(0.06)
            .stride_frac(0.2)
            .code_bytes(48 * KB)
            .branch_bias(0.85)
            .pattern_frac(0.3)
            .mean_dep_dist(2.2)
            .addr_indep_frac(0.4)
            .phases(vec![
                Phase::branch_storm(200_000, 0.40),
                Phase::neutral(180_000),
            ])
            .build(),
        // ---------------- floating point ----------------
        "wupwise" => b
            .class(A::Fp)
            .ipc_class(I::High)
            .footprint(F::Medium)
            .branch_frac(0.06)
            .load_frac(0.24)
            .store_frac(0.10)
            .fp_frac(0.55)
            .mul_frac(0.12)
            .data_ws_bytes(8 * MB)
            .cold_frac(0.04)
            .stride_frac(0.8)
            .code_bytes(16 * KB)
            .branch_bias(0.97)
            .pattern_frac(0.8)
            .mean_dep_dist(4.5)
            .addr_indep_frac(0.85)
            .src_indep_frac(0.35)
            .build(),
        "swim" => b
            .class(A::Fp)
            .ipc_class(I::Low)
            .footprint(F::Large)
            .branch_frac(0.03)
            .load_frac(0.30)
            .store_frac(0.14)
            .fp_frac(0.65)
            .mul_frac(0.10)
            .data_ws_bytes(16 * MB)
            .cold_frac(0.35)
            .stride_frac(0.95)
            .code_bytes(4 * KB)
            .branch_bias(0.99)
            .pattern_frac(0.9)
            .mean_dep_dist(5.0)
            .addr_indep_frac(0.95)
            .src_indep_frac(0.4)
            .phases(vec![
                // full-grid sweeps / boundary updates
                Phase::mem_storm(300_000, 1.5),
                Phase::mem_storm(150_000, 0.5),
            ])
            .build(),
        "mgrid" => b
            .class(A::Fp)
            .ipc_class(I::Medium)
            .footprint(F::Large)
            .branch_frac(0.03)
            .load_frac(0.33)
            .store_frac(0.08)
            .fp_frac(0.6)
            .mul_frac(0.14)
            .data_ws_bytes(8 * MB)
            .cold_frac(0.18)
            .stride_frac(0.9)
            .code_bytes(8 * KB)
            .branch_bias(0.99)
            .pattern_frac(0.9)
            .mean_dep_dist(4.2)
            .addr_indep_frac(0.9)
            .src_indep_frac(0.35)
            .build(),
        "applu" => b
            .class(A::Fp)
            .ipc_class(I::Medium)
            .footprint(F::Large)
            .branch_frac(0.04)
            .load_frac(0.28)
            .store_frac(0.12)
            .fp_frac(0.6)
            .mul_frac(0.12)
            .div_frac(0.01)
            .data_ws_bytes(16 * MB)
            .cold_frac(0.15)
            .stride_frac(0.85)
            .code_bytes(24 * KB)
            .branch_bias(0.98)
            .pattern_frac(0.85)
            .mean_dep_dist(3.8)
            .addr_indep_frac(0.85)
            .src_indep_frac(0.3)
            .phases(vec![
                Phase::mem_storm(250_000, 1.5),
                Phase::mem_storm(200_000, 0.7),
            ])
            .build(),
        "mesa" => b
            .class(A::Fp)
            .ipc_class(I::High)
            .footprint(F::Small)
            .branch_frac(0.09)
            .jump_frac(0.03)
            .load_frac(0.23)
            .store_frac(0.09)
            .fp_frac(0.4)
            .mul_frac(0.10)
            .data_ws_bytes(512 * KB)
            .cold_frac(0.01)
            .stride_frac(0.6)
            .code_bytes(96 * KB)
            .branch_bias(0.94)
            .pattern_frac(0.6)
            .mean_dep_dist(4.0)
            .addr_indep_frac(0.75)
            .src_indep_frac(0.3)
            .build(),
        "art" => b
            .class(A::Fp)
            .ipc_class(I::Low)
            .footprint(F::Large)
            .branch_frac(0.09)
            .load_frac(0.32)
            .store_frac(0.06)
            .fp_frac(0.5)
            .mul_frac(0.15)
            .data_ws_bytes(4 * MB)
            .cold_frac(0.40)
            .stride_frac(0.5)
            .code_bytes(4 * KB)
            .branch_bias(0.95)
            .pattern_frac(0.7)
            .mean_dep_dist(2.0)
            .addr_indep_frac(0.35)
            .phases(vec![
                // scan (streaming, hostile) / match (compute)
                Phase {
                    len_uops: 300_000,
                    mem_pressure: 1.3,
                    br_pressure: 1.0,
                    ilp_scale: 0.9,
                    predictability: 1.0,
                },
                Phase {
                    len_uops: 100_000,
                    mem_pressure: 0.3,
                    br_pressure: 1.2,
                    ilp_scale: 1.4,
                    predictability: 1.0,
                },
            ])
            .build(),
        "equake" => b
            .class(A::Fp)
            .ipc_class(I::Low)
            .footprint(F::Large)
            .branch_frac(0.07)
            .load_frac(0.34)
            .store_frac(0.08)
            .fp_frac(0.55)
            .mul_frac(0.13)
            .data_ws_bytes(8 * MB)
            .cold_frac(0.20)
            .stride_frac(0.4)
            .code_bytes(8 * KB)
            .branch_bias(0.96)
            .pattern_frac(0.7)
            .mean_dep_dist(2.6)
            .addr_indep_frac(0.4)
            .phases(vec![
                // sparse matrix-vector sweeps / time integration
                Phase::mem_storm(200_000, 1.8),
                Phase::mem_storm(150_000, 0.5),
            ])
            .build(),
        "ammp" => b
            .class(A::Fp)
            .ipc_class(I::Low)
            .footprint(F::Large)
            .branch_frac(0.08)
            .load_frac(0.30)
            .store_frac(0.09)
            .fp_frac(0.6)
            .mul_frac(0.14)
            .div_frac(0.012)
            .data_ws_bytes(16 * MB)
            .cold_frac(0.12)
            .stride_frac(0.3)
            .code_bytes(16 * KB)
            .branch_bias(0.93)
            .pattern_frac(0.5)
            .mean_dep_dist(2.4)
            .addr_indep_frac(0.25)
            .phases(vec![
                // neighbour-list rebuilds / force evaluation
                Phase::mem_storm(250_000, 2.0),
                Phase::mem_storm(150_000, 0.6),
            ])
            .build(),
        "lucas" => b
            .class(A::Fp)
            .ipc_class(I::Medium)
            .footprint(F::Large)
            .branch_frac(0.02)
            .load_frac(0.28)
            .store_frac(0.14)
            .fp_frac(0.7)
            .mul_frac(0.2)
            .data_ws_bytes(16 * MB)
            .cold_frac(0.22)
            .stride_frac(0.95)
            .code_bytes(4 * KB)
            .branch_bias(0.99)
            .pattern_frac(0.95)
            .mean_dep_dist(4.8)
            .addr_indep_frac(0.95)
            .src_indep_frac(0.4)
            .phases(vec![
                // FFT passes (strided, cache-hostile) / pointwise squaring
                Phase::mem_storm(300_000, 1.4),
                Phase::mem_storm(150_000, 0.5),
            ])
            .build(),
        "apsi" => b
            .class(A::Fp)
            .ipc_class(I::Medium)
            .footprint(F::Medium)
            .branch_frac(0.05)
            .load_frac(0.27)
            .store_frac(0.11)
            .fp_frac(0.55)
            .mul_frac(0.13)
            .div_frac(0.008)
            .data_ws_bytes(4 * MB)
            .cold_frac(0.08)
            .stride_frac(0.7)
            .code_bytes(32 * KB)
            .branch_bias(0.97)
            .pattern_frac(0.8)
            .mean_dep_dist(3.6)
            .build(),
        other => panic!("unknown application profile {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_named_profiles_valid() {
        for name in app_names() {
            let p = app(name);
            assert_eq!(p.name, name);
            assert!(p.validate().is_ok(), "profile {name} invalid");
        }
    }

    #[test]
    fn count_matches() {
        assert_eq!(app_names().len(), APP_COUNT);
    }

    #[test]
    #[should_panic]
    fn unknown_app_panics() {
        let _ = app("doom");
    }

    #[test]
    fn classes_cover_both() {
        let names = app_names();
        assert!(names.iter().any(|n| app(n).class == AppClass::Int));
        assert!(names.iter().any(|n| app(n).class == AppClass::Fp));
    }

    #[test]
    fn ipc_classes_cover_all_three() {
        use smt_isa::IpcClass::*;
        let have: Vec<_> = app_names().iter().map(|n| app(n).ipc_class).collect();
        for want in [Low, Medium, High] {
            assert!(have.contains(&want), "no app with ipc class {want:?}");
        }
    }

    #[test]
    fn memory_bound_apps_have_high_cold_frac() {
        assert!(app("mcf").cold_frac > app("gzip").cold_frac);
        assert!(app("art").cold_frac > app("mesa").cold_frac);
        assert!(app("swim").cold_frac > app("wupwise").cold_frac);
    }

    #[test]
    fn branchy_apps_have_high_branch_frac() {
        assert!(app("gcc").branch_frac > app("swim").branch_frac);
        assert!(app("perlbmk").branch_frac > app("lucas").branch_frac);
    }

    #[test]
    fn pointer_chasers_have_low_addr_independence() {
        assert!(app("mcf").addr_indep_frac < app("swim").addr_indep_frac);
        assert!(app("ammp").addr_indep_frac < app("lucas").addr_indep_frac);
    }

    #[test]
    fn most_apps_have_phases() {
        let phased = app_names()
            .iter()
            .filter(|n| !app(n).phases.is_empty())
            .count();
        assert!(phased >= 12, "want >=12 phased apps, got {phased}");
    }

    #[test]
    fn branch_storms_exist() {
        let stormy = app_names()
            .iter()
            .filter(|n| app(n).phases.iter().any(|p| p.predictability < 1.0))
            .count();
        assert!(
            stormy >= 5,
            "want >=5 apps with mispredict storms, got {stormy}"
        );
    }
}
