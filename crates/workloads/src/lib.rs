//! # smt-workloads
//!
//! The workload substrate that replaces SPEC CPU2000 in this reproduction:
//!
//! - [`apps`] — named application profiles calibrated to the published
//!   character of SPEC CPU2000 programs (instruction mix, working set,
//!   branch predictability, ILP);
//! - [`stream`] — the deterministic statistical micro-op generator that
//!   turns a profile into an infinite per-thread instruction stream;
//! - [`mixes`] — the thirteen eight-program mixes the paper evaluates,
//!   composed along the paper's axes (single-thread IPC class, memory
//!   footprint, int vs fp), plus the 4-/6-thread sub-mixes;
//! - [`trace`] — the replay backend: streams recorded to an `SMTTRACE`
//!   container replay bit-identically through the same [`UopStream`]
//!   interface the synthetic generator implements;
//! - [`seed`] — SplitMix64 seed derivation so every (experiment, mix,
//!   thread) tuple gets an independent, reproducible random stream.
//!
//! Everything is `Clone` and deterministic: cloning a stream and generating
//! from both copies yields identical micro-ops, which the oracle scheduler
//! in `adts-core` relies on.

pub mod apps;
pub mod mixes;
pub mod mixgen;
pub mod seed;
pub mod stream;
pub mod trace;

pub use apps::{app, app_names, APP_COUNT};
pub use mixes::{mix, mix_names, thread_addr_base, Mix, MIX_COUNT};
pub use mixgen::{generate as generate_mix, generate_many as generate_mixes, MixConstraints};
pub use seed::SplitMix64;
pub use stream::{SynthStream, UopStream};
pub use trace::{streams_from_trace, TraceStream};
