//! The thirteen program mixes.
//!
//! §5 of the paper: "We used SPEC CPU2000 as our simulation workloads and
//! formed thirteen program mixtures depending on each program's properties:
//! IPC on a single threaded machine model, memory footprint and whether an
//! application requires floating-point operations or not. For combinations
//! with a mix of integer and floating-point applications, we attempted to
//! make the mix as even as possible. For simulation of 4- and 6-thread
//! cases, some applications were randomly chosen to be excluded from the
//! 8-thread mixes."
//!
//! We follow the same taxonomy. MIX09 reconstructs the paper's §1 motivating
//! scenario: four control-intensive applications plus four others. MIX13 is
//! a deliberately *similar* (homogeneous) mix, because §6 reports that ADTS
//! gains most when "more similar applications are found in a mixture".
//! The 4-/6-thread variants use a deterministic SplitMix64 exclusion draw in
//! place of the paper's unspecified random choice.

use crate::apps::app;
use crate::seed::SplitMix64;
use crate::stream::UopStream;
use serde::Serialize;
use smt_isa::AppProfile;
use std::sync::Arc;

/// Number of mixes ([`mix`] accepts `1..=MIX_COUNT`).
pub const MIX_COUNT: usize = 13;

/// Canonical per-thread virtual address base.
///
/// The high bits separate the address spaces; the `t << 16` component
/// staggers each thread's regions across cache *sets* — with identical
/// bases every thread's code would land on I-cache set 0 and eight threads
/// would thrash one 4-way set forever, which no real address-space layout
/// does.
pub fn thread_addr_base(t: usize) -> u64 {
    (((t as u64) + 1) << 40) | ((t as u64) << 16)
}

/// Threads per full mix.
pub const MIX_WIDTH: usize = 8;

/// A named eight-application mixture.
///
/// `Serialize` (but not `Deserialize`: `description` is static text) so the
/// sweep cache can key results on the *full* composition, not just the name.
#[derive(Clone, Debug, Serialize)]
pub struct Mix {
    /// `"MIX01"`-style identifier.
    pub name: String,
    /// Human description of the composition axis.
    pub description: &'static str,
    /// The member applications, one per hardware context.
    pub apps: Vec<AppProfile>,
}

/// Mix names in canonical order.
pub fn mix_names() -> Vec<String> {
    (1..=MIX_COUNT).map(|i| format!("MIX{i:02}")).collect()
}

fn members(id: usize) -> (&'static str, [&'static str; MIX_WIDTH]) {
    match id {
        1 => (
            "all-integer, balanced IPC",
            [
                "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "gap", "bzip2",
            ],
        ),
        2 => (
            "all floating-point, balanced IPC",
            [
                "wupwise", "swim", "mgrid", "applu", "mesa", "art", "equake", "apsi",
            ],
        ),
        3 => (
            "even int/fp, high single-thread IPC",
            [
                "gzip", "crafty", "bzip2", "vortex", "wupwise", "mesa", "mgrid", "apsi",
            ],
        ),
        4 => (
            "even int/fp, low single-thread IPC",
            [
                "mcf", "twolf", "vpr", "parser", "art", "equake", "ammp", "swim",
            ],
        ),
        5 => (
            "control-intensive integer",
            [
                "gcc", "perlbmk", "crafty", "vpr", "parser", "twolf", "vortex", "bzip2",
            ],
        ),
        6 => (
            "memory-bound, large footprint",
            [
                "mcf", "art", "swim", "equake", "ammp", "lucas", "applu", "twolf",
            ],
        ),
        7 => (
            "high-IPC, cache-resident",
            [
                "gzip", "crafty", "bzip2", "mesa", "wupwise", "gap", "vortex", "gzip",
            ],
        ),
        8 => (
            "low-IPC mixed",
            [
                "mcf", "twolf", "art", "equake", "ammp", "parser", "swim", "vpr",
            ],
        ),
        9 => (
            "4 control-intensive + 4 others (paper §1 scenario)",
            [
                "gcc", "perlbmk", "parser", "vpr", "gzip", "mesa", "wupwise", "crafty",
            ],
        ),
        10 => (
            "small data footprint",
            [
                "gzip", "crafty", "mesa", "gap", "perlbmk", "bzip2", "vpr", "parser",
            ],
        ),
        11 => (
            "large data footprint",
            [
                "mcf", "vortex", "swim", "applu", "ammp", "lucas", "equake", "art",
            ],
        ),
        12 => (
            "diverse, well-balanced (best case for fixed ICOUNT)",
            [
                "gzip", "gcc", "mcf", "crafty", "wupwise", "swim", "mesa", "art",
            ],
        ),
        13 => (
            "similar memory-bound (best case for ADTS)",
            [
                "mcf", "mcf", "art", "art", "swim", "swim", "equake", "equake",
            ],
        ),
        _ => panic!("mix id {id} outside 1..={MIX_COUNT}"),
    }
}

/// Build mix `id` (`1..=MIX_COUNT`).
pub fn mix(id: usize) -> Mix {
    let (description, names) = members(id);
    Mix {
        name: format!("MIX{id:02}"),
        description,
        apps: names.iter().map(|n| app(n)).collect(),
    }
}

impl Mix {
    /// All thirteen mixes.
    pub fn all() -> Vec<Mix> {
        (1..=MIX_COUNT).map(mix).collect()
    }

    /// Reduce to `n` threads (n ≤ 8) by deterministically excluding members,
    /// mirroring the paper's random exclusion for 4-/6-thread runs.
    pub fn take_threads(&self, n: usize, seed: u64) -> Mix {
        assert!(
            n >= 1 && n <= self.apps.len(),
            "thread count {n} out of range"
        );
        let mut keep: Vec<usize> = (0..self.apps.len()).collect();
        let mut rng = SplitMix64::new(SplitMix64::derive(seed, 0x313));
        while keep.len() > n {
            let victim = rng.next_below(keep.len() as u64) as usize;
            keep.remove(victim);
        }
        Mix {
            name: format!("{}x{n}", self.name),
            description: self.description,
            apps: keep.iter().map(|&i| self.apps[i].clone()).collect(),
        }
    }

    /// Instantiate one [`UopStream`] per member. Thread `t` gets a distinct
    /// address base (distinct address spaces, shared caches) and a sub-seed
    /// derived from `seed` and its position.
    pub fn streams(&self, seed: u64) -> Vec<UopStream> {
        self.apps
            .iter()
            .enumerate()
            .map(|(t, p)| {
                UopStream::new(
                    Arc::new(p.clone()),
                    SplitMix64::derive(seed, 0x1000 + t as u64),
                    thread_addr_base(t),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::AppClass;

    #[test]
    fn all_mixes_have_eight_members() {
        for m in Mix::all() {
            assert_eq!(m.apps.len(), MIX_WIDTH, "{}", m.name);
        }
    }

    #[test]
    fn mix_count_is_thirteen() {
        assert_eq!(Mix::all().len(), MIX_COUNT);
        assert_eq!(mix_names().len(), MIX_COUNT);
    }

    #[test]
    fn even_mixes_are_even() {
        for id in [3, 4] {
            let m = mix(id);
            let ints = m.apps.iter().filter(|a| a.class == AppClass::Int).count();
            assert_eq!(ints, 4, "{} int count", m.name);
        }
    }

    #[test]
    fn mix09_has_four_control_intensive() {
        let m = mix(9);
        let branchy = m.apps.iter().filter(|a| a.branch_frac >= 0.13).count();
        assert_eq!(
            branchy, 4,
            "MIX09 should have exactly 4 control-intensive members"
        );
    }

    #[test]
    fn mix13_is_homogeneous_memory_bound() {
        let m = mix(13);
        assert!(
            m.apps.iter().all(|a| a.cold_frac >= 0.12),
            "MIX13 members must be memory-bound"
        );
    }

    #[test]
    fn take_threads_is_deterministic_and_sized() {
        let m = mix(1);
        for n in [4, 6] {
            let a = m.take_threads(n, 99);
            let b = m.take_threads(n, 99);
            assert_eq!(a.apps.len(), n);
            let names_a: Vec<_> = a.apps.iter().map(|p| p.name.clone()).collect();
            let names_b: Vec<_> = b.apps.iter().map(|p| p.name.clone()).collect();
            assert_eq!(names_a, names_b);
        }
    }

    #[test]
    fn take_threads_preserves_order_of_survivors() {
        let m = mix(5);
        let sub = m.take_threads(6, 7);
        // Each survivor must appear in the original order.
        let orig: Vec<_> = m.apps.iter().map(|p| &p.name).collect();
        let mut last = 0;
        for p in &sub.apps {
            let pos = orig[last..]
                .iter()
                .position(|n| *n == &p.name)
                .expect("member lost");
            last += pos + 1;
        }
    }

    #[test]
    fn streams_have_distinct_bases_and_seeds() {
        let m = mix(2);
        let streams = m.streams(42);
        assert_eq!(streams.len(), MIX_WIDTH);
        let mut s0 = streams[0].clone();
        let mut s1 = streams[1].clone();
        let a = s0.next_uop();
        let b = s1.next_uop();
        assert_ne!(
            a.pc >> 40,
            b.pc >> 40,
            "threads must live at distinct bases"
        );
    }

    #[test]
    #[should_panic]
    fn mix_zero_panics() {
        let _ = mix(0);
    }
}
