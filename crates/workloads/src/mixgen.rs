//! Random constrained mix generation.
//!
//! The paper's thirteen mixes are hand-composed along three axes
//! (single-thread IPC class, memory footprint, int vs fp). To check that
//! conclusions are not artifacts of those particular thirteen, the
//! robustness experiment draws *random* mixes under the same taxonomy
//! constraints. [`MixConstraints`] expresses the axes; [`generate`] draws a
//! deterministic mix for a seed.

use crate::apps::{app, app_names};
use crate::mixes::Mix;
use crate::seed::SplitMix64;
use smt_isa::{AppClass, AppProfile, FootprintClass, IpcClass};

/// Constraints a generated mix must satisfy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixConstraints {
    /// Number of member applications.
    pub width: usize,
    /// Exact number of integer-class members (`None` = unconstrained).
    pub int_members: Option<usize>,
    /// Minimum number of low-IPC members.
    pub min_low_ipc: usize,
    /// Maximum number of large-footprint members.
    pub max_large_footprint: usize,
    /// Allow the same application to appear more than once (the paper's
    /// MIX13 does this deliberately).
    pub allow_duplicates: bool,
}

impl Default for MixConstraints {
    fn default() -> Self {
        MixConstraints {
            width: 8,
            int_members: None,
            min_low_ipc: 0,
            max_large_footprint: 8,
            allow_duplicates: false,
        }
    }
}

impl MixConstraints {
    /// Does `apps` satisfy the constraints?
    pub fn check(&self, apps: &[AppProfile]) -> bool {
        if apps.len() != self.width {
            return false;
        }
        let ints = apps.iter().filter(|a| a.class == AppClass::Int).count();
        if let Some(want) = self.int_members {
            if ints != want {
                return false;
            }
        }
        let low = apps.iter().filter(|a| a.ipc_class == IpcClass::Low).count();
        if low < self.min_low_ipc {
            return false;
        }
        let large = apps
            .iter()
            .filter(|a| a.footprint == FootprintClass::Large)
            .count();
        if large > self.max_large_footprint {
            return false;
        }
        if !self.allow_duplicates {
            let mut names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
            names.sort();
            names.dedup();
            if names.len() != apps.len() {
                return false;
            }
        }
        true
    }
}

/// Draw a random mix satisfying `constraints`, deterministically from
/// `seed`. Returns `None` if no satisfying mix was found within the
/// attempt budget (constraints can be unsatisfiable, e.g. more distinct
/// int members than int apps exist).
pub fn generate(constraints: &MixConstraints, seed: u64) -> Option<Mix> {
    let names = app_names();
    let mut rng = SplitMix64::new(SplitMix64::derive(seed, 0x3178));
    for _attempt in 0..512 {
        let mut picked: Vec<AppProfile> = Vec::with_capacity(constraints.width);
        while picked.len() < constraints.width {
            let name = names[rng.next_below(names.len() as u64) as usize];
            if !constraints.allow_duplicates && picked.iter().any(|a| a.name == name) {
                continue;
            }
            picked.push(app(name));
        }
        if constraints.check(&picked) {
            return Some(Mix {
                name: format!("RAND{:04x}", seed & 0xFFFF),
                description: "randomly generated under taxonomy constraints",
                apps: picked,
            });
        }
    }
    None
}

/// Generate `n` distinct-seed random mixes (skipping unsatisfiable draws).
pub fn generate_many(constraints: &MixConstraints, base_seed: u64, n: usize) -> Vec<Mix> {
    (0..n as u64)
        .filter_map(|i| {
            generate(constraints, SplitMix64::derive(base_seed, 0x9999 + i)).map(|mut m| {
                m.name = format!("RAND{i:02}");
                m
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_constraints_generate_full_width() {
        let m = generate(&MixConstraints::default(), 1).expect("satisfiable");
        assert_eq!(m.apps.len(), 8);
        // No duplicates by default.
        let mut names: Vec<&str> = m.apps.iter().map(|a| a.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&MixConstraints::default(), 7).unwrap();
        let b = generate(&MixConstraints::default(), 7).unwrap();
        let na: Vec<_> = a.apps.iter().map(|x| x.name.clone()).collect();
        let nb: Vec<_> = b.apps.iter().map(|x| x.name.clone()).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&MixConstraints::default(), 1).unwrap();
        let b = generate(&MixConstraints::default(), 2).unwrap();
        let na: Vec<_> = a.apps.iter().map(|x| x.name.clone()).collect();
        let nb: Vec<_> = b.apps.iter().map(|x| x.name.clone()).collect();
        assert_ne!(na, nb);
    }

    #[test]
    fn int_member_constraint_is_exact() {
        let c = MixConstraints {
            int_members: Some(4),
            ..Default::default()
        };
        for seed in 0..10 {
            let m = generate(&c, seed).expect("satisfiable");
            let ints = m.apps.iter().filter(|a| a.class == AppClass::Int).count();
            assert_eq!(ints, 4, "seed {seed}");
        }
    }

    #[test]
    fn low_ipc_minimum_respected() {
        let c = MixConstraints {
            min_low_ipc: 3,
            ..Default::default()
        };
        let m = generate(&c, 5).expect("satisfiable");
        let low = m
            .apps
            .iter()
            .filter(|a| a.ipc_class == IpcClass::Low)
            .count();
        assert!(low >= 3);
    }

    #[test]
    fn unsatisfiable_returns_none() {
        // More distinct large-footprint members than exist while forbidding
        // any large members at all: width 8, max_large 0, but also require
        // 8 low-IPC members (all low-IPC apps are large-footprint).
        let c = MixConstraints {
            min_low_ipc: 8,
            max_large_footprint: 0,
            ..Default::default()
        };
        assert!(generate(&c, 3).is_none());
    }

    #[test]
    fn generate_many_yields_requested_count() {
        let mixes = generate_many(&MixConstraints::default(), 11, 5);
        assert_eq!(mixes.len(), 5);
        assert_eq!(mixes[0].name, "RAND00");
        assert_eq!(mixes[4].name, "RAND04");
    }

    #[test]
    fn duplicates_allowed_when_requested() {
        let c = MixConstraints {
            allow_duplicates: true,
            ..Default::default()
        };
        // With duplicates allowed, some seed will produce one quickly; just
        // make sure generation succeeds and width holds.
        let m = generate(&c, 9).expect("satisfiable");
        assert_eq!(m.apps.len(), 8);
    }
}
