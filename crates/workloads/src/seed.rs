//! Deterministic seed derivation.
//!
//! Every random decision in the workspace flows from an explicit root seed
//! through [`SplitMix64`], so any (experiment, mix, thread, purpose) tuple
//! maps to a reproducible sub-seed. SplitMix64 is the standard seeding PRNG
//! (Steele et al., "Fast Splittable Pseudorandom Number Generators"); it is
//! tiny, passes BigCrush, and — unlike reusing the simulation RNG — keeps
//! seed derivation independent of how many values a stream has consumed.

/// SplitMix64 generator. Also usable directly as a cheap standalone PRNG for
/// static derivations (e.g. branch-site personalities).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a root seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `0..bound` (bound > 0), via Lemire reduction.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// The raw generator state, for external checkpointing.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from a previously captured [`state`](Self::state).
    #[inline]
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Derive an independent sub-seed for a labelled purpose. The label is
    /// hashed in so `derive(a)` and `derive(b)` never collide for `a != b`.
    #[inline]
    pub fn derive(root: u64, label: u64) -> u64 {
        let mut s = SplitMix64::new(root ^ label.wrapping_mul(0xA24B_AED4_963E_E407));
        s.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut s = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = s.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut s = SplitMix64::new(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| s.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut s = SplitMix64::new(11);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(s.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn derive_labels_are_independent() {
        assert_ne!(SplitMix64::derive(5, 0), SplitMix64::derive(5, 1));
        assert_ne!(SplitMix64::derive(5, 0), SplitMix64::derive(6, 0));
        assert_eq!(SplitMix64::derive(5, 3), SplitMix64::derive(5, 3));
    }
}
