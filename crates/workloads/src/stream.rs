//! The statistical micro-op stream generator.
//!
//! [`UopStream`] turns an [`AppProfile`] into an infinite, deterministic,
//! cloneable stream of dynamic [`MicroOp`]s. The generator models what the
//! cycle-level machine needs to see, in a way the machine's *real* structural
//! models (caches, gshare, rename) respond to faithfully:
//!
//! - **control flow**: a synthetic program counter walks a code region;
//!   branches have per-site personalities (deterministic short patterns or
//!   biased coins) so the machine's gshare predictor reaches realistic,
//!   per-app accuracy; calls and returns maintain a shadow call stack so the
//!   RAS works; taken branches relocate the PC, giving the I-cache a real
//!   locality structure (loops, function bodies);
//! - **data flow**: destination registers are allocated round-robin from a
//!   window of 24 names, and sources name the destination written `d` ops
//!   ago with `d` geometric (mean = `mean_dep_dist`). Because the window is
//!   larger than the maximum distance, the *architectural* register name
//!   uniquely identifies the intended producer, so the machine's renamer
//!   reconstructs exactly the intended dependence graph;
//! - **memory**: accesses split between a hot working set (strided and
//!   random components) and a cold streaming region that always misses,
//!   with the split modulated by the profile's phase schedule.
//!
//! Each thread's stream is placed at a distinct virtual base address so
//! threads never share data, but they *do* compete for cache capacity —
//! exactly the interference the paper's scheduling policies manage.

use crate::seed::SplitMix64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smt_isa::codec::{self, ByteReader, ByteWriter, Codec, CodecError};
use smt_isa::{AppProfile, ArchReg, BranchInfo, BranchKind, MemInfo, MicroOp, OpKind, RegClass};
use std::sync::Arc;

/// Number of distinct destination registers the generator cycles through per
/// class. Must exceed [`MAX_DEP_DIST`] so dependence distances are exact.
const DST_WINDOW: u8 = 24;

/// Dependence distances are capped here; beyond it the op is independent.
const MAX_DEP_DIST: usize = 20;

/// Code region instruction slot size (bytes per op).
const OP_BYTES: u64 = 4;

/// Size of the cold streaming region each thread walks through (wraps).
const COLD_REGION_BYTES: u64 = 64 << 20;

/// Maximum shadow call-stack depth tracked for return targets.
const CALL_STACK_MAX: usize = 16;

/// Per-site branch personality, derived deterministically from the stream
/// seed and the site index, so it is stable across clones and replays.
///
/// Two flavours, matching the two dominant populations in real code:
/// *loop* sites are taken `trip - 1` times then fall through once (a
/// pc-indexed predictor gets `(trip-1)/trip` of them right); *biased*
/// sites follow a dominant direction with probability `branch_bias`.
#[derive(Clone, Copy, Debug)]
struct BranchSite {
    /// `Some(trip_count)` for loop-style sites.
    loop_trip: Option<u16>,
    /// Iteration position within the loop.
    pos: u16,
    /// For biased sites: dominant direction.
    dominant_taken: bool,
}

/// Deterministic, cloneable infinite *statistical* micro-op stream for one
/// thread — the synthetic backend behind the [`UopStream`] facade.
#[derive(Clone, Debug)]
pub struct SynthStream {
    profile: Arc<AppProfile>,
    rng: SmallRng,
    /// Per-thread virtual address base; ORed into every address and PC.
    addr_base: u64,

    // control flow
    pc: u64,
    code_size: u64,
    sites: Vec<BranchSite>,
    call_stack: Vec<u64>,
    /// Hot function entry points; most calls go here (code has hot spots —
    /// without this, large-footprint apps walk their code uniformly and
    /// the I-cache mispredicts reality by an order of magnitude).
    hot_entries: Vec<u64>,

    // data flow
    next_dst_int: u8,
    next_dst_fp: u8,
    /// Ring of the last `MAX_DEP_DIST` destination registers, most recent
    /// last. `None` entries are ops without a destination.
    recent_dsts: [Option<ArchReg>; MAX_DEP_DIST],
    recent_head: usize,
    /// Destination of the most recent load: conditional branches test
    /// loaded values half the time (that is *why* hard branches resolve
    /// late and wrong-path waste piles up behind cache misses).
    last_load_dst: Option<ArchReg>,

    // memory
    ws_size: u64,
    /// Hot-subset size for random accesses (80/20 two-level locality).
    ws_hot_size: u64,
    /// Span the strided pointer walks before wrapping: real inner loops
    /// re-walk bounded arrays, not the entire footprint.
    stride_span: u64,
    ws_stride_ptr: u64,
    cold_ptr: u64,

    // phases
    phase_idx: usize,
    phase_left: u64,

    // bookkeeping
    generated: u64,
    /// When set, the stream replays this script cyclically instead of
    /// generating statistically — the hook that lets the machine model be
    /// microtested with exact op sequences.
    script: Option<Vec<MicroOp>>,
    script_pos: usize,
}

impl SynthStream {
    /// Create a stream for `profile`, seeded by `seed`, with all addresses
    /// offset by `addr_base` (give each thread a distinct base).
    pub fn new(profile: Arc<AppProfile>, seed: u64, addr_base: u64) -> Self {
        debug_assert!(profile.validate().is_ok());
        let code_size = profile.code_bytes.max(64).next_power_of_two();
        // One site per instruction slot, capped: apps with very large code
        // footprints alias sites, which (realistically) hurts their
        // predictability a little.
        let n_sites = ((code_size / OP_BYTES).max(16) as usize).min(16_384);
        let mut site_seed = SplitMix64::new(SplitMix64::derive(seed, 0xB7A7));
        let sites = (0..n_sites)
            .map(|_| {
                let r = site_seed.next_f64();
                if r < profile.pattern_frac {
                    // Trip counts 4..=32, skewed low like real inner loops.
                    let trip =
                        4 + (site_seed.next_u64() % 29).min(site_seed.next_u64() % 29) as u16;
                    BranchSite {
                        loop_trip: Some(trip),
                        pos: 0,
                        dominant_taken: true,
                    }
                } else {
                    BranchSite {
                        loop_trip: None,
                        pos: 0,
                        dominant_taken: site_seed.next_u64() & 1 == 0,
                    }
                }
            })
            .collect();
        let phase_left = profile
            .phases
            .first()
            .map(|p| p.len_uops)
            .unwrap_or(u64::MAX);
        let span_ops = code_size / OP_BYTES;
        let mut entry_seed = SplitMix64::new(SplitMix64::derive(seed, 0xF00D));
        let hot_entries = (0..12)
            .map(|_| ((entry_seed.next_u64() % span_ops) & !63) * OP_BYTES % code_size)
            .collect();
        let ws_size = profile.data_ws_bytes.max(64).next_power_of_two();
        SynthStream {
            rng: SmallRng::seed_from_u64(SplitMix64::derive(seed, 0x57EE)),
            addr_base,
            pc: 0,
            code_size,
            sites,
            call_stack: Vec::with_capacity(CALL_STACK_MAX),
            hot_entries,
            next_dst_int: 0,
            next_dst_fp: 0,
            recent_dsts: [None; MAX_DEP_DIST],
            recent_head: 0,
            last_load_dst: None,
            ws_hot_size: (ws_size / 32).clamp(2 << 10, 8 << 10).min(ws_size),
            stride_span: (ws_size / 8).clamp(4 << 10, 64 << 10).min(ws_size),
            ws_size,
            ws_stride_ptr: 0,
            cold_ptr: 0,
            phase_idx: 0,
            phase_left,
            generated: 0,
            script: None,
            script_pos: 0,
            profile,
        }
    }

    /// A stream that replays `ops` cyclically (for machine microtests).
    /// The ops' `pc` fields should already carry the thread's address base;
    /// `profile` only provides metadata (working-set size for the
    /// wrong-path generator).
    pub fn scripted(profile: Arc<AppProfile>, addr_base: u64, ops: Vec<MicroOp>) -> Self {
        assert!(!ops.is_empty(), "empty script");
        let mut s = SynthStream::new(profile, 0, addr_base);
        s.script = Some(ops);
        s
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Total micro-ops generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Program counter of the *next* op this stream will generate (with the
    /// thread's address base applied). The fetch stage uses this for the
    /// I-cache access before consuming the op.
    pub fn current_pc(&self) -> u64 {
        if let Some(script) = &self.script {
            return script[self.script_pos].pc;
        }
        self.addr_base | self.pc
    }

    /// The thread's virtual address base.
    pub fn addr_base(&self) -> u64 {
        self.addr_base
    }

    #[inline]
    fn phase(&self) -> (f64, f64, f64, f64) {
        match self.profile.phases.get(self.phase_idx) {
            Some(p) => (p.mem_pressure, p.br_pressure, p.ilp_scale, p.predictability),
            None => (1.0, 1.0, 1.0, 1.0),
        }
    }

    fn advance_phase(&mut self) {
        if self.profile.phases.is_empty() {
            return;
        }
        self.phase_left -= 1;
        if self.phase_left == 0 {
            self.phase_idx = (self.phase_idx + 1) % self.profile.phases.len();
            self.phase_left = self.profile.phases[self.phase_idx].len_uops;
        }
    }

    /// Allocate a destination register of `class`, cycling through the
    /// window (offset by 2 to keep r0/r1 as never-written "constant" regs).
    fn alloc_dst(&mut self, class: RegClass) -> ArchReg {
        let ctr = match class {
            RegClass::Int => {
                let c = self.next_dst_int;
                self.next_dst_int = (self.next_dst_int + 1) % DST_WINDOW;
                c
            }
            RegClass::Fp => {
                let c = self.next_dst_fp;
                self.next_dst_fp = (self.next_dst_fp + 1) % DST_WINDOW;
                c
            }
        };
        ArchReg {
            class,
            idx: 2 + ctr,
        }
    }

    /// Pick a source register at a geometric dependence distance, or `None`
    /// for an independent operand (an immediate / long-lived value) — drawn
    /// with probability `indep_frac`, or when the distance draw exceeds the
    /// window.
    fn pick_src(&mut self, ilp_scale: f64, indep_frac: f64) -> Option<ArchReg> {
        if self.rng.gen::<f64>() < indep_frac {
            return None;
        }
        let mean = (self.profile.mean_dep_dist * ilp_scale).max(1.0);
        // Geometric with mean `mean`: P(d = k) = (1-p)^(k-1) p, p = 1/mean.
        let p = 1.0 / mean;
        let u: f64 = self.rng.gen::<f64>();
        let d = 1 + (u.ln() / (1.0 - p).max(1e-12).ln()).floor() as usize;
        if d > MAX_DEP_DIST {
            return None;
        }
        // recent_head points at the slot for the *next* push; distance 1 is
        // the most recent.
        let slot = (self.recent_head + MAX_DEP_DIST - d) % MAX_DEP_DIST;
        self.recent_dsts[slot]
    }

    fn push_dst(&mut self, dst: Option<ArchReg>) {
        self.recent_dsts[self.recent_head] = dst;
        self.recent_head = (self.recent_head + 1) % MAX_DEP_DIST;
    }

    /// Generate a data address according to locality parameters.
    fn gen_addr(&mut self, mem_pressure: f64) -> u64 {
        let cold = (self.profile.cold_frac * mem_pressure).min(1.0);
        let off = if self.rng.gen::<f64>() < cold {
            // Streaming through a large cold region: every new line misses.
            self.cold_ptr = (self.cold_ptr + 64) % COLD_REGION_BYTES;
            (1 << 30) + self.cold_ptr
        } else if self.rng.gen::<f64>() < self.profile.stride_frac {
            self.ws_stride_ptr = (self.ws_stride_ptr + 8) % self.stride_span;
            self.ws_stride_ptr
        } else if self.rng.gen::<f64>() < 0.8 {
            // Two-level locality: most random accesses hit a hot subset.
            (self.rng.gen::<u64>() % self.ws_hot_size) & !7
        } else {
            (self.rng.gen::<u64>() % self.ws_size) & !7
        };
        self.addr_base | off
    }

    fn site_for(&self, pc: u64) -> usize {
        ((pc / OP_BYTES) as usize) % self.sites.len()
    }

    /// Resolve the direction of the conditional branch at `pc`;
    /// `predictability` is the current phase's learnable fraction.
    fn branch_outcome(&mut self, pc: u64, predictability: f64) -> bool {
        if predictability < 1.0 && self.rng.gen::<f64>() >= predictability {
            // Storm outcome: pure noise, unlearnable by any predictor.
            return self.rng.gen::<bool>();
        }
        let idx = self.site_for(pc);
        let site = &mut self.sites[idx];
        match site.loop_trip {
            Some(trip) => {
                // Taken trip-1 times, then the loop exit.
                site.pos = (site.pos + 1) % trip;
                site.pos != 0
            }
            None => {
                let follow = self.rng.gen::<f64>() < self.profile.branch_bias;
                site.dominant_taken == follow
            }
        }
    }

    /// Pick a conditional-branch target: mostly short backward loops, some
    /// forward skips — both stay inside the code region.
    fn cond_target(&mut self, pc: u64) -> u64 {
        let span_ops = self.code_size / OP_BYTES;
        if self.rng.gen::<f64>() < 0.6 {
            let back = 4 + self.rng.gen::<u64>() % 60; // loop body 4..64 ops
            pc.wrapping_sub(back * OP_BYTES) % self.code_size
        } else {
            let fwd = 2 + self.rng.gen::<u64>() % 30;
            ((pc / OP_BYTES + fwd) % span_ops) * OP_BYTES
        }
    }

    /// Serialize the complete generator state for checkpointing. Decoding
    /// with [`decode_state`](Self::decode_state) yields a stream whose
    /// future output is bit-identical to this one's.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        codec::encode_json(w, self.profile.as_ref());
        self.rng.state().encode(w);
        w.u64(self.addr_base);
        w.u64(self.pc);
        w.u64(self.code_size);
        w.usize(self.sites.len());
        for s in &self.sites {
            s.loop_trip.encode(w);
            w.u16(s.pos);
            w.bool(s.dominant_taken);
        }
        self.call_stack.encode(w);
        self.hot_entries.encode(w);
        w.u8(self.next_dst_int);
        w.u8(self.next_dst_fp);
        self.recent_dsts.encode(w);
        w.usize(self.recent_head);
        self.last_load_dst.encode(w);
        w.u64(self.ws_size);
        w.u64(self.ws_hot_size);
        w.u64(self.stride_span);
        w.u64(self.ws_stride_ptr);
        w.u64(self.cold_ptr);
        w.usize(self.phase_idx);
        w.u64(self.phase_left);
        w.u64(self.generated);
        self.script.encode(w);
        w.usize(self.script_pos);
    }

    /// Rebuild a stream from [`encode_state`](Self::encode_state) bytes.
    pub fn decode_state(r: &mut ByteReader) -> Result<Self, CodecError> {
        let profile: AppProfile = codec::decode_json(r)?;
        let rng = SmallRng::from_state(<[u64; 4]>::decode(r)?);
        let addr_base = r.u64()?;
        let pc = r.u64()?;
        let code_size = r.u64()?;
        let n_sites = r.usize()?;
        let mut sites = Vec::with_capacity(n_sites.min(16_384));
        for _ in 0..n_sites {
            sites.push(BranchSite {
                loop_trip: Option::decode(r)?,
                pos: r.u16()?,
                dominant_taken: r.bool()?,
            });
        }
        if sites.is_empty() {
            return Err(CodecError::Invalid("stream has no branch sites".into()));
        }
        Ok(SynthStream {
            profile: Arc::new(profile),
            rng,
            addr_base,
            pc,
            code_size,
            sites,
            call_stack: Vec::decode(r)?,
            hot_entries: Vec::decode(r)?,
            next_dst_int: r.u8()?,
            next_dst_fp: r.u8()?,
            recent_dsts: <[Option<ArchReg>; MAX_DEP_DIST]>::decode(r)?,
            recent_head: r.usize()?,
            last_load_dst: Option::decode(r)?,
            ws_size: r.u64()?,
            ws_hot_size: r.u64()?,
            stride_span: r.u64()?,
            ws_stride_ptr: r.u64()?,
            cold_ptr: r.u64()?,
            phase_idx: r.usize()?,
            phase_left: r.u64()?,
            generated: r.u64()?,
            script: Option::decode(r)?,
            script_pos: r.usize()?,
        })
    }

    /// Generate the next micro-op.
    pub fn next_uop(&mut self) -> MicroOp {
        if let Some(script) = &self.script {
            let op = script[self.script_pos];
            self.script_pos = (self.script_pos + 1) % script.len();
            self.generated += 1;
            return op;
        }
        let (mem_p, br_p, ilp_s, predictability) = self.phase();
        // Cheap Arc clone so profile reads don't hold a borrow of `self`
        // across the mutating helper calls below.
        let p = Arc::clone(&self.profile);

        let branch_frac = (p.branch_frac * br_p).min(0.5);
        let r: f64 = self.rng.gen();
        let syscall_p = p.syscall_per_muop / 1.0e6;

        let pc = self.addr_base | self.pc;
        let mut next_pc = (self.pc + OP_BYTES) % self.code_size;

        // Local snapshot of per-branch probabilities to keep the cascade
        // readable. Order: syscall, cond-branch, jump, load, store, compute.
        let jump_hi = syscall_p + branch_frac + p.jump_frac;
        let load_hi = jump_hi + p.load_frac;
        let store_hi = load_hi + p.store_frac;

        let (kind, dst, src1, src2, mem, branch) = if r < syscall_p {
            (OpKind::Syscall, None, None, None, None, None)
        } else if r < syscall_p + branch_frac {
            let taken = self.branch_outcome(self.pc, predictability);
            let target_off = self.cond_target(self.pc);
            if taken {
                next_pc = target_off;
            }
            let s1 = if self.rng.gen::<f64>() < 0.5 && self.last_load_dst.is_some() {
                self.last_load_dst
            } else {
                self.pick_src(ilp_s, p.src_indep_frac)
            };
            (
                OpKind::Branch,
                None,
                s1,
                None,
                None,
                Some(BranchInfo {
                    kind: BranchKind::Conditional,
                    taken,
                    target: self.addr_base | target_off,
                }),
            )
        } else if r < jump_hi {
            // Unconditional control: call / return / direct jump.
            let u: f64 = self.rng.gen();
            let (bk, target_off) = if u < 0.35 && self.call_stack.len() < CALL_STACK_MAX {
                // Call: usually one of the hot functions, occasionally a
                // cold one (85/15 — code has hot spots).
                let entry = if self.rng.gen::<f64>() < 0.85 {
                    let i = (self.rng.gen::<u64>() as usize) % self.hot_entries.len();
                    self.hot_entries[i]
                } else {
                    let span_ops = self.code_size / OP_BYTES;
                    ((self.rng.gen::<u64>() % span_ops) & !63) * OP_BYTES % self.code_size
                };
                self.call_stack.push(next_pc);
                (BranchKind::Call, entry)
            } else if u < 0.70 {
                match self.call_stack.pop() {
                    Some(ret) => (BranchKind::Return, ret),
                    None => (BranchKind::Unconditional, self.cond_target(self.pc)),
                }
            } else {
                (BranchKind::Unconditional, self.cond_target(self.pc))
            };
            next_pc = target_off;
            (
                OpKind::Branch,
                None,
                None,
                None,
                None,
                Some(BranchInfo {
                    kind: bk,
                    taken: true,
                    target: self.addr_base | target_off,
                }),
            )
        } else if r < load_hi {
            let addr = self.gen_addr(mem_p);
            let class = if self.rng.gen::<f64>() < p.fp_frac {
                RegClass::Fp
            } else {
                RegClass::Int
            };
            let dst = self.alloc_dst(class);
            self.last_load_dst = Some(dst);
            let s1 = self.pick_src(ilp_s, p.addr_indep_frac);
            (
                OpKind::Load,
                Some(dst),
                s1,
                None,
                Some(MemInfo { addr, size: 8 }),
                None,
            )
        } else if r < store_hi {
            let addr = self.gen_addr(mem_p);
            let s1 = self.pick_src(ilp_s, p.addr_indep_frac); // address
            let s2 = self.pick_src(ilp_s, p.src_indep_frac); // data
            (
                OpKind::Store,
                None,
                s1,
                s2,
                Some(MemInfo { addr, size: 8 }),
                None,
            )
        } else {
            // Compute op.
            let fp = self.rng.gen::<f64>() < p.fp_frac;
            let u: f64 = self.rng.gen();
            let kind = if u < p.div_frac {
                if fp {
                    OpKind::FpDiv
                } else {
                    OpKind::IntDiv
                }
            } else if u < p.div_frac + p.mul_frac {
                if fp {
                    OpKind::FpMul
                } else {
                    OpKind::IntMul
                }
            } else if fp {
                OpKind::FpAlu
            } else {
                OpKind::IntAlu
            };
            let class = if fp { RegClass::Fp } else { RegClass::Int };
            let dst = self.alloc_dst(class);
            let s1 = self.pick_src(ilp_s, p.src_indep_frac);
            let s2 = self.pick_src(ilp_s, p.src_indep_frac);
            (kind, Some(dst), s1, s2, None, None)
        };

        self.push_dst(dst);
        self.pc = next_pc;
        self.generated += 1;
        self.advance_phase();

        let op = MicroOp {
            kind,
            pc,
            dst,
            src1,
            src2,
            mem,
            branch,
        };
        debug_assert!(
            op.is_well_formed(),
            "generator produced ill-formed op {op:?}"
        );
        op
    }
}

impl Iterator for SynthStream {
    type Item = MicroOp;
    fn next(&mut self) -> Option<MicroOp> {
        Some(self.next_uop())
    }
}

/// Backend tag leading every serialized [`UopStream`] state.
const STATE_TAG_SYNTH: u8 = 0;
const STATE_TAG_TRACE: u8 = 1;

/// A per-thread micro-op source: either the statistical generator
/// ([`SynthStream`]) or a recorded-trace replayer
/// ([`TraceStream`](crate::trace::TraceStream)). The machine, the warm
/// pool and the batch stepper all hold this facade, so every simulator
/// feature works identically over both backends.
///
/// ```
/// use smt_workloads::{app, thread_addr_base, UopStream};
/// use std::sync::Arc;
///
/// let mut stream = UopStream::new(Arc::new(app("gzip")), 42, thread_addr_base(0));
/// let op = stream.next_uop();
/// assert!(op.is_well_formed());
/// ```
// The synthetic variant dominates the size, but boxing it would put a
// pointer chase on the default backend's per-op hot path for the sake of
// a handful of per-thread instances — not a trade worth making.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum UopStream {
    Synth(SynthStream),
    Trace(crate::trace::TraceStream),
}

impl UopStream {
    /// A synthetic stream for `profile` (see [`SynthStream::new`]).
    pub fn new(profile: Arc<AppProfile>, seed: u64, addr_base: u64) -> Self {
        UopStream::Synth(SynthStream::new(profile, seed, addr_base))
    }

    /// A synthetic stream that replays `ops` cyclically (see
    /// [`SynthStream::scripted`]).
    pub fn scripted(profile: Arc<AppProfile>, addr_base: u64, ops: Vec<MicroOp>) -> Self {
        UopStream::Synth(SynthStream::scripted(profile, addr_base, ops))
    }

    /// The profile describing this stream's application (replay carries the
    /// captured profile, so the wrong-path generator and thread metadata
    /// behave identically over both backends).
    pub fn profile(&self) -> &AppProfile {
        match self {
            UopStream::Synth(s) => s.profile(),
            UopStream::Trace(t) => t.profile(),
        }
    }

    /// Total micro-ops this stream has handed out.
    pub fn generated(&self) -> u64 {
        match self {
            UopStream::Synth(s) => s.generated(),
            UopStream::Trace(t) => t.generated(),
        }
    }

    /// Program counter of the *next* op (address base applied).
    pub fn current_pc(&self) -> u64 {
        match self {
            UopStream::Synth(s) => s.current_pc(),
            UopStream::Trace(t) => t.current_pc(),
        }
    }

    /// The thread's virtual address base.
    pub fn addr_base(&self) -> u64 {
        match self {
            UopStream::Synth(s) => s.addr_base(),
            UopStream::Trace(t) => t.addr_base(),
        }
    }

    /// Generate or replay the next micro-op.
    pub fn next_uop(&mut self) -> MicroOp {
        match self {
            UopStream::Synth(s) => s.next_uop(),
            UopStream::Trace(t) => t.next_uop(),
        }
    }

    /// Serialize the stream (backend tag + backend state) for
    /// checkpointing. Decoding yields a stream whose future output is
    /// bit-identical to this one's.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        match self {
            UopStream::Synth(s) => {
                w.u8(STATE_TAG_SYNTH);
                s.encode_state(w);
            }
            UopStream::Trace(t) => {
                w.u8(STATE_TAG_TRACE);
                t.encode_state(w);
            }
        }
    }

    /// Rebuild a stream from [`encode_state`](Self::encode_state) bytes.
    pub fn decode_state(r: &mut ByteReader) -> Result<Self, CodecError> {
        match r.u8()? {
            STATE_TAG_SYNTH => Ok(UopStream::Synth(SynthStream::decode_state(r)?)),
            STATE_TAG_TRACE => Ok(UopStream::Trace(crate::trace::TraceStream::decode_state(
                r,
            )?)),
            tag => Err(CodecError::BadTag {
                what: "UopStream backend",
                tag: tag as u64,
            }),
        }
    }
}

impl From<SynthStream> for UopStream {
    fn from(s: SynthStream) -> Self {
        UopStream::Synth(s)
    }
}

impl From<crate::trace::TraceStream> for UopStream {
    fn from(t: crate::trace::TraceStream) -> Self {
        UopStream::Trace(t)
    }
}

impl Iterator for UopStream {
    type Item = MicroOp;
    fn next(&mut self) -> Option<MicroOp> {
        Some(self.next_uop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::AppProfile;

    fn stream_of(p: AppProfile, seed: u64) -> UopStream {
        UopStream::new(Arc::new(p), seed, 0x1_0000_0000)
    }

    fn default_stream(seed: u64) -> UopStream {
        stream_of(AppProfile::builder("t").build(), seed)
    }

    #[test]
    fn all_ops_well_formed() {
        let mut s = default_stream(1);
        for _ in 0..20_000 {
            assert!(s.next_uop().is_well_formed());
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = default_stream(7);
        let mut b = default_stream(7);
        for _ in 0..10_000 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn clone_preserves_future() {
        let mut a = default_stream(9);
        for _ in 0..5_000 {
            a.next_uop();
        }
        let mut b = a.clone();
        for _ in 0..5_000 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn mix_fractions_hit_targets() {
        let p = AppProfile::builder("mix")
            .branch_frac(0.15)
            .load_frac(0.25)
            .store_frac(0.10)
            .build();
        let mut s = stream_of(p, 3);
        let n = 200_000;
        let (mut br, mut ld, mut st) = (0u32, 0u32, 0u32);
        for _ in 0..n {
            let op = s.next_uop();
            match op.kind {
                OpKind::Branch if op.is_cond_branch() => br += 1,
                OpKind::Load => ld += 1,
                OpKind::Store => st += 1,
                _ => {}
            }
        }
        let f = |c: u32| c as f64 / n as f64;
        assert!((f(br) - 0.15).abs() < 0.01, "branch frac {}", f(br));
        assert!((f(ld) - 0.25).abs() < 0.01, "load frac {}", f(ld));
        assert!((f(st) - 0.10).abs() < 0.01, "store frac {}", f(st));
    }

    #[test]
    fn dependence_sources_were_recently_written() {
        // Any named source must have been a destination within the last
        // MAX_DEP_DIST ops — that is the contract that makes renaming
        // reconstruct the intended dependence. The one exception is a
        // conditional branch testing the most recent *load* result, which
        // may lie further back.
        let mut s = default_stream(11);
        let mut recent: Vec<Option<ArchReg>> = Vec::new();
        let mut last_load: Option<ArchReg> = None;
        for _ in 0..50_000 {
            let op = s.next_uop();
            for src in [op.src1, op.src2].into_iter().flatten() {
                let hit = recent
                    .iter()
                    .rev()
                    .take(MAX_DEP_DIST)
                    .any(|d| *d == Some(src))
                    || (op.is_cond_branch() && last_load == Some(src));
                assert!(
                    hit,
                    "source {src} not written in the last {MAX_DEP_DIST} ops"
                );
            }
            recent.push(op.dst);
            if op.kind == OpKind::Load {
                last_load = op.dst;
            }
        }
    }

    #[test]
    fn addresses_carry_thread_base() {
        let mut s = UopStream::new(Arc::new(AppProfile::builder("t").build()), 5, 0x7_0000_0000);
        for _ in 0..10_000 {
            let op = s.next_uop();
            if let Some(m) = op.mem {
                assert_eq!(m.addr & 0x7_0000_0000, 0x7_0000_0000);
            }
            assert_eq!(op.pc & 0x7_0000_0000, 0x7_0000_0000);
        }
    }

    #[test]
    fn cold_fraction_scales_with_phase_pressure() {
        let base = AppProfile::builder("ph")
            .cold_frac(0.05)
            .phases(vec![
                smt_isa::Phase::neutral(50_000),
                smt_isa::Phase::mem_storm(50_000, 8.0),
            ])
            .build();
        let mut s = stream_of(base, 13);
        let cold_in = |s: &mut UopStream, n: u64| {
            let (mut cold, mut mem) = (0u64, 0u64);
            for _ in 0..n {
                if let Some(m) = s.next_uop().mem {
                    mem += 1;
                    if m.addr & (1 << 30) != 0 {
                        cold += 1;
                    }
                }
            }
            cold as f64 / mem.max(1) as f64
        };
        let quiet = cold_in(&mut s, 50_000);
        let loud = cold_in(&mut s, 50_000);
        assert!(
            loud > 3.0 * quiet,
            "phase pressure had no effect: {quiet} vs {loud}"
        );
    }

    #[test]
    fn branch_targets_in_code_region() {
        let p = AppProfile::builder("code").code_bytes(4096).build();
        let code_size = 4096u64;
        let mut s = stream_of(p, 17);
        for _ in 0..20_000 {
            let op = s.next_uop();
            if let Some(b) = op.branch {
                let off = b.target & 0xFFFF_FFFF;
                assert!(off < code_size, "target offset {off} outside code region");
            }
        }
    }

    #[test]
    fn loop_sites_are_periodic() {
        // With pattern_frac = 1 every branch site behaves like a loop
        // branch: taken trip-1 times, not-taken once, repeating.
        let p = AppProfile::builder("pat")
            .pattern_frac(1.0)
            .branch_frac(0.3)
            .code_bytes(1024) // small code so individual sites get hot
            .build();
        let mut s = stream_of(p, 19);
        use std::collections::HashMap;
        let mut hist: HashMap<u64, Vec<bool>> = HashMap::new();
        for _ in 0..200_000 {
            let op = s.next_uop();
            if op.is_cond_branch() {
                hist.entry(op.pc)
                    .or_default()
                    .push(op.branch.unwrap().taken);
            }
        }
        let (_, seq) = hist.iter().max_by_key(|(_, v)| v.len()).unwrap();
        assert!(seq.len() > 64, "no hot branch site found");
        // Not-taken events must be evenly spaced (the loop exits).
        let exits: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter(|(_, t)| !**t)
            .map(|(i, _)| i)
            .collect();
        assert!(exits.len() >= 2, "loop site never exits: {seq:?}");
        let gaps: Vec<usize> = exits.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).all(|w| w[0] == w[1]),
            "irregular loop exits: {gaps:?}"
        );
        // Majority taken.
        let taken = seq.iter().filter(|t| **t).count();
        assert!(taken * 2 > seq.len(), "loop site not majority-taken");
    }

    #[test]
    fn syscalls_at_configured_rate() {
        let p = AppProfile::builder("sys").syscall_per_muop(500.0).build();
        let mut s = stream_of(p, 23);
        let n = 200_000;
        let count = (0..n)
            .filter(|_| s.next_uop().kind == OpKind::Syscall)
            .count();
        let per_muop = count as f64 * 1.0e6 / n as f64;
        assert!((per_muop - 500.0).abs() < 120.0, "syscall rate {per_muop}");
    }

    #[test]
    fn scripted_stream_replays_cyclically() {
        let ops = vec![MicroOp::nop(0x100), MicroOp::nop(0x104)];
        let mut s = UopStream::scripted(Arc::new(AppProfile::builder("t").build()), 0, ops);
        assert_eq!(s.current_pc(), 0x100);
        assert_eq!(s.next_uop().pc, 0x100);
        assert_eq!(s.current_pc(), 0x104);
        assert_eq!(s.next_uop().pc, 0x104);
        assert_eq!(s.next_uop().pc, 0x100, "script must cycle");
        assert_eq!(s.generated(), 3);
    }

    #[test]
    #[should_panic]
    fn empty_script_panics() {
        let _ = UopStream::scripted(Arc::new(AppProfile::builder("t").build()), 0, vec![]);
    }

    #[test]
    fn encoded_state_resumes_identically() {
        let mut a = default_stream(31);
        for _ in 0..7_500 {
            a.next_uop();
        }
        let mut w = ByteWriter::new();
        a.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut b = UopStream::decode_state(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(b.generated(), a.generated());
        assert_eq!(b.current_pc(), a.current_pc());
        for _ in 0..7_500 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn scripted_state_roundtrips() {
        let ops = vec![MicroOp::nop(0x100), MicroOp::nop(0x104)];
        let mut s = UopStream::scripted(Arc::new(AppProfile::builder("t").build()), 0, ops);
        s.next_uop();
        let mut w = ByteWriter::new();
        s.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = UopStream::decode_state(&mut ByteReader::new(&bytes)).expect("decode");
        assert_eq!(b.current_pc(), 0x104);
        assert_eq!(b.next_uop().pc, 0x104);
        assert_eq!(b.next_uop().pc, 0x100);
    }

    #[test]
    fn truncated_state_is_an_error() {
        let s = default_stream(37);
        let mut w = ByteWriter::new();
        s.encode_state(&mut w);
        let bytes = w.into_bytes();
        let cut = bytes.len() / 2;
        assert!(UopStream::decode_state(&mut ByteReader::new(&bytes[..cut])).is_err());
    }

    #[test]
    fn generated_counter_advances() {
        let mut s = default_stream(29);
        assert_eq!(s.generated(), 0);
        for _ in 0..10 {
            s.next_uop();
        }
        assert_eq!(s.generated(), 10);
    }
}
