//! The trace-replay micro-op stream.
//!
//! [`TraceStream`] is the second backend behind the [`UopStream`]
//! facade: where [`SynthStream`](crate::stream::SynthStream) *generates*
//! ops from a statistical profile, this replays ops recorded in an
//! `SMTTRACE` container (see `smt_isa::tracefile`). The contract is the
//! same in every respect the machine can observe — `current_pc()` peeks
//! the next op, `next_uop()` consumes it, `generated()` counts
//! consumption, and the state codec round-trips to a bit-identical
//! future — so checkpointing, the warm pool and batched lockstep
//! stepping work unchanged over traces.
//!
//! Like the synthetic script mode, a trace wraps cyclically when
//! exhausted: streams are infinite by contract (the machine never asks
//! "is there more?"), and a wrapped replay stays deterministic. Capture
//! sizing keeps pinned runs comfortably inside the recorded span, so
//! conformance fixtures never actually wrap.

use smt_isa::codec::{self, ByteReader, ByteWriter, Codec, CodecError};
use smt_isa::tracefile::TraceFile;
use smt_isa::{AppProfile, MicroOp};
use std::sync::Arc;

use crate::stream::UopStream;

/// Replays one thread's recorded op sequence cyclically.
///
/// The op vector is `Arc`-shared: cloning a stream (the warm pool and
/// the batch stepper clone machines freely) costs two pointer bumps,
/// not a trace copy.
#[derive(Clone, Debug)]
pub struct TraceStream {
    profile: Arc<AppProfile>,
    addr_base: u64,
    ops: Arc<Vec<MicroOp>>,
    /// Index of the next op to hand out (always `< ops.len()`).
    pos: usize,
    /// Total ops consumed — keeps counting across wraps, mirroring the
    /// synthetic `generated` counter.
    consumed: u64,
}

impl TraceStream {
    /// Replay `ops` for a thread with the given identity. Panics on an
    /// empty op list (a stream must always have a next op to peek).
    pub fn replay(profile: Arc<AppProfile>, addr_base: u64, ops: Arc<Vec<MicroOp>>) -> Self {
        assert!(!ops.is_empty(), "empty trace");
        TraceStream {
            profile,
            addr_base,
            ops,
            pos: 0,
            consumed: 0,
        }
    }

    /// Load thread `tid` of a parsed trace container.
    pub fn from_file(file: &TraceFile, tid: usize) -> Result<Self, CodecError> {
        let meta = file
            .meta()
            .threads
            .get(tid)
            .ok_or_else(|| {
                CodecError::Invalid(format!(
                    "thread {tid} out of range ({} threads)",
                    file.n_threads()
                ))
            })?
            .clone();
        let ops = file.read_thread(tid)?;
        Ok(TraceStream::replay(
            Arc::new(meta.profile),
            meta.addr_base,
            Arc::new(ops),
        ))
    }

    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    pub fn addr_base(&self) -> u64 {
        self.addr_base
    }

    pub fn generated(&self) -> u64 {
        self.consumed
    }

    /// Number of recorded ops before the replay wraps.
    pub fn trace_len(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Program counter of the next op to be replayed.
    pub fn current_pc(&self) -> u64 {
        self.ops[self.pos].pc
    }

    pub fn next_uop(&mut self) -> MicroOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        self.consumed += 1;
        op
    }

    /// Jump the replay cursor so the stream behaves as if `n` ops had
    /// already been consumed — `fast_forward_to(n)` is equivalent to `n`
    /// calls of [`next_uop`](Self::next_uop), which the conformance suite
    /// pins. Chunk-level skipping happens in `TraceFile::read_thread_from`;
    /// here the ops are already in memory and only the cursor moves.
    pub fn fast_forward_to(&mut self, n: u64) {
        self.consumed = n;
        self.pos = (n % self.ops.len() as u64) as usize;
    }

    /// Serialize replay state. The recorded ops travel with the state so
    /// a checkpoint restores with no external trace file present —
    /// exactly like the synthetic script mode.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        codec::encode_json(w, self.profile.as_ref());
        w.u64(self.addr_base);
        self.ops.as_ref().encode(w);
        w.u64(self.consumed);
    }

    /// Rebuild a stream from [`encode_state`](Self::encode_state) bytes.
    pub fn decode_state(r: &mut ByteReader) -> Result<Self, CodecError> {
        let profile: AppProfile = codec::decode_json(r)?;
        let addr_base = r.u64()?;
        let ops: Vec<MicroOp> = Vec::decode(r)?;
        if ops.is_empty() {
            return Err(CodecError::Invalid("trace stream has no ops".into()));
        }
        let consumed = r.u64()?;
        let pos = (consumed % ops.len() as u64) as usize;
        Ok(TraceStream {
            profile: Arc::new(profile),
            addr_base,
            ops: Arc::new(ops),
            pos,
            consumed,
        })
    }
}

/// Build one [`UopStream`] per recorded thread of a parsed trace — the
/// replay-side mirror of `Mix::streams`.
pub fn streams_from_trace(file: &TraceFile) -> Result<Vec<UopStream>, CodecError> {
    (0..file.n_threads())
        .map(|tid| TraceStream::from_file(file, tid).map(UopStream::Trace))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SynthStream;
    use smt_isa::tracefile::TraceWriter;

    fn captured(n: usize) -> (Arc<AppProfile>, Vec<MicroOp>) {
        let p = Arc::new(crate::app("gzip"));
        let mut s = SynthStream::new(Arc::clone(&p), 7, 0x1_0000_0000);
        let ops = (0..n).map(|_| s.next_uop()).collect();
        (p, ops)
    }

    #[test]
    fn replay_reproduces_captured_ops_and_wraps() {
        let (p, ops) = captured(500);
        let mut t = TraceStream::replay(Arc::clone(&p), 0x1_0000_0000, Arc::new(ops.clone()));
        assert_eq!(t.current_pc(), ops[0].pc);
        for op in &ops {
            assert_eq!(t.next_uop(), *op);
        }
        assert_eq!(t.generated(), 500);
        assert_eq!(t.next_uop(), ops[0], "trace must wrap cyclically");
    }

    #[test]
    fn fast_forward_equals_stepping() {
        let (p, ops) = captured(300);
        let ops = Arc::new(ops);
        for n in [0u64, 1, 123, 299, 300, 301, 750] {
            let mut a = TraceStream::replay(Arc::clone(&p), 0, Arc::clone(&ops));
            let mut b = a.clone();
            for _ in 0..n {
                a.next_uop();
            }
            b.fast_forward_to(n);
            assert_eq!(a.generated(), b.generated(), "at {n}");
            assert_eq!(a.current_pc(), b.current_pc(), "at {n}");
            for _ in 0..50 {
                assert_eq!(a.next_uop(), b.next_uop(), "after {n}");
            }
        }
    }

    #[test]
    fn state_roundtrips_mid_replay() {
        let (p, ops) = captured(400);
        let mut a = TraceStream::replay(p, 0x2_0000_0000, Arc::new(ops));
        for _ in 0..157 {
            a.next_uop();
        }
        let mut w = ByteWriter::new();
        a.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut b = TraceStream::decode_state(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(b.generated(), a.generated());
        for _ in 0..400 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn facade_state_tags_distinguish_backends() {
        let (p, ops) = captured(64);
        let synth = UopStream::new(Arc::clone(&p), 3, 0x1_0000_0000);
        let trace = UopStream::Trace(TraceStream::replay(p, 0x1_0000_0000, Arc::new(ops)));
        for s in [synth, trace] {
            let mut w = ByteWriter::new();
            s.encode_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let mut back = UopStream::decode_state(&mut r).expect("decode");
            r.finish().expect("fully consumed");
            assert_eq!(back.generated(), s.generated());
            assert_eq!(back.current_pc(), s.current_pc());
            assert_eq!(
                matches!(back, UopStream::Trace(_)),
                matches!(s, UopStream::Trace(_))
            );
            back.next_uop();
        }
        // An unknown backend tag is a typed error.
        let bad = [9u8, 0, 0];
        assert!(matches!(
            UopStream::decode_state(&mut ByteReader::new(&bad)),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn streams_from_trace_rebuilds_all_threads() {
        let (p, ops_a) = captured(200);
        let mut s2 = SynthStream::new(Arc::new(crate::app("mcf")), 9, 0x2_0000_0000);
        let ops_b: Vec<MicroOp> = (0..150).map(|_| s2.next_uop()).collect();
        let mut w = TraceWriter::new("unit", 7, 1024);
        w.add_thread(&p, 0x1_0000_0000, &ops_a);
        w.add_thread(s2.profile(), 0x2_0000_0000, &ops_b);
        let file = TraceFile::parse(w.finish()).expect("parse");
        let mut streams = streams_from_trace(&file).expect("streams");
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].profile().name, "gzip");
        assert_eq!(streams[1].addr_base(), 0x2_0000_0000);
        for op in &ops_a {
            assert_eq!(streams[0].next_uop(), *op);
        }
        for op in &ops_b {
            assert_eq!(streams[1].next_uop(), *op);
        }
    }
}
