//! Property-based tests on the workload generator: statistical targets and
//! structural guarantees for arbitrary valid profiles.

use proptest::prelude::*;
use smt_isa::{AppProfile, OpKind};
use smt_workloads::{thread_addr_base, SplitMix64, UopStream};
use std::sync::Arc;

fn arb_profile() -> impl Strategy<Value = AppProfile> {
    (
        0.02..0.2f64, // branch
        0.05..0.3f64, // load
        0.0..0.15f64, // store
        1.0..6.0f64,  // dep
        0.5..1.0f64,  // bias
        12u32..22,    // ws log2
        10u32..16,    // code log2
    )
        .prop_map(|(br, ld, st, dep, bias, ws, code)| {
            AppProfile::builder("prop")
                .branch_frac(br)
                .load_frac(ld)
                .store_frac(st)
                .mean_dep_dist(dep)
                .branch_bias(bias)
                .data_ws_bytes(1 << ws)
                .code_bytes(1 << code)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn stream_is_deterministic(p in arb_profile(), seed in any::<u64>()) {
        let mut a = UopStream::new(Arc::new(p.clone()), seed, thread_addr_base(0));
        let mut b = UopStream::new(Arc::new(p), seed, thread_addr_base(0));
        for _ in 0..500 {
            prop_assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn fractions_converge_to_profile(p in arb_profile(), seed in 0u64..100) {
        let n = 60_000u64;
        let mut s = UopStream::new(Arc::new(p.clone()), seed, thread_addr_base(1));
        let (mut ld, mut st) = (0u64, 0u64);
        for _ in 0..n {
            match s.next_uop().kind {
                OpKind::Load => ld += 1,
                OpKind::Store => st += 1,
                _ => {}
            }
        }
        let f = |c: u64| c as f64 / n as f64;
        prop_assert!((f(ld) - p.load_frac).abs() < 0.02, "load {} vs {}", f(ld), p.load_frac);
        prop_assert!((f(st) - p.store_frac).abs() < 0.02, "store {} vs {}", f(st), p.store_frac);
    }

    #[test]
    fn pcs_stay_in_code_region(p in arb_profile(), seed in 0u64..100) {
        let code = p.code_bytes.next_power_of_two();
        let base = thread_addr_base(2);
        let mut s = UopStream::new(Arc::new(p), seed, base);
        for _ in 0..5_000 {
            let op = s.next_uop();
            prop_assert!(op.pc & !base < code.max(64), "pc escaped code region");
        }
    }

    #[test]
    fn splitmix_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut s = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(s.next_below(bound) < bound);
            let f = s.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn generated_counter_matches_pulls(p in arb_profile(), n in 1u64..2_000) {
        let mut s = UopStream::new(Arc::new(p), 5, thread_addr_base(3));
        for _ in 0..n {
            let _ = s.next_uop();
        }
        prop_assert_eq!(s.generated(), n);
    }
}
