//! Adaptation timeline: watch the detector thread react to workload phases
//! in real time — per-quantum IPC sparkline, the policy track, and each
//! switch marked benign (`^`) or malignant (`!`).
//!
//! ```sh
//! cargo run --release --example adaptation_timeline -- 9 4.0
//! ```

use smt_adts::prelude::*;
use smt_adts::stats::{render_timeline, Histogram};

fn main() {
    let mut args = std::env::args().skip(1);
    let mix_id: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let threshold: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4.0);
    let mix = workloads::mix(mix_id);
    println!(
        "mix {} — {} (threshold m = {threshold})\n",
        mix.name, mix.description
    );

    let quanta = 64;
    let run = |heuristic: Option<HeuristicKind>| {
        let mut machine = adts::machine_for_mix(&mix, 42);
        let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, 6, 8192);
        match heuristic {
            None => adts::run_fixed(FetchPolicy::Icount, &mut machine, quanta, 8192),
            Some(h) => adts::run_adaptive(
                AdtsConfig {
                    ipc_threshold: threshold,
                    heuristic: h,
                    ..Default::default()
                },
                &mut machine,
                quanta,
            ),
        }
    };

    let fixed = run(None);
    println!("fixed ICOUNT ({:.3} IPC):", fixed.aggregate_ipc());
    println!("{}", render_timeline(&fixed));

    for h in [
        HeuristicKind::Type1,
        HeuristicKind::Type3,
        HeuristicKind::Type4,
    ] {
        let s = run(Some(h));
        println!(
            "{} ({:.3} IPC, {} switches, P(benign) {}):",
            h.name(),
            s.aggregate_ipc(),
            s.switches.len(),
            s.benign_fraction()
                .map(|b| format!("{b:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
        println!("{}", render_timeline(&s));
    }

    // Distribution view: does adaptation trim the low-IPC tail?
    let adaptive = run(Some(HeuristicKind::Type1));
    let mut hf = Histogram::new(0.0, 8.0, 32);
    let mut ha = Histogram::new(0.0, 8.0, 32);
    hf.extend(fixed.quanta.iter().map(|q| q.ipc));
    ha.extend(adaptive.quanta.iter().map(|q| q.ipc));
    println!("per-quantum IPC distribution (0..8):");
    println!(
        "  fixed    {}  p10={:.2}",
        hf.sparkline(),
        hf.quantile(0.10)
    );
    println!(
        "  adaptive {}  p10={:.2}",
        ha.sparkline(),
        ha.quantile(0.10)
    );
}
