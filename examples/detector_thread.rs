//! Detector-thread cost model: the paper argues the DT's decision software
//! fits in otherwise-idle fetch slots. This example runs the same adaptive
//! configuration under the free, budgeted and starved DT models and shows
//! what the budget does to switch timing — plus the DT's second job, clog
//! identification.
//!
//! ```sh
//! cargo run --release --example detector_thread -- 6
//! ```

use smt_adts::prelude::*;

fn run(mix: &Mix, dt: DtModel, label: &str) {
    let cfg = AdtsConfig {
        dt,
        heuristic: HeuristicKind::Type3,
        ..Default::default()
    };
    let mut machine = adts::machine_for_mix(mix, 42);
    let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, 6, 8192);
    let mut sched = AdaptiveScheduler::new(cfg, machine.n_threads());
    for _ in 0..40 {
        sched.run_quantum(&mut machine);
    }
    let series = sched.series();
    println!(
        "{label:<16} IPC {:.3}   switches {:<3} benign {}",
        series.aggregate_ipc(),
        series.switches.len(),
        series
            .benign_fraction()
            .map(|b| format!("{:.2}", b))
            .unwrap_or_else(|| "-".into()),
    );
    if !sched.clog_log().is_empty() {
        let mut counts = std::collections::BTreeMap::new();
        for (_, tid) in sched.clog_log() {
            *counts.entry(tid.idx()).or_insert(0u32) += 1;
        }
        let names: Vec<String> = counts
            .iter()
            .map(|(t, n)| format!("{}x{}", mix.apps[*t].name, n))
            .collect();
        println!("{:<16} clog marks: {}", "", names.join(" "));
    }
}

fn main() {
    let mix_id: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let mix = workloads::mix(mix_id);
    println!("mix {} — {}\n", mix.name, mix.description);

    run(&mix, DtModel::Free, "free DT");
    run(
        &mix,
        DtModel::Budgeted {
            throughput_factor: 1.0,
        },
        "budgeted x1.0",
    );
    run(
        &mix,
        DtModel::Budgeted {
            throughput_factor: 0.1,
        },
        "budgeted x0.1",
    );
    run(&mix, DtModel::Starved, "starved DT");

    println!(
        "\nThe budgeted models delay each policy switch by (decision cost /\n\
         idle fetch slots per cycle); a busy machine therefore adapts more\n\
         slowly — and the starved endpoint degenerates to fixed scheduling,\n\
         which is exactly the paper's argument for why DT overhead is\n\
         acceptable: the DT only loses its slots when the pipeline is full."
    );
}
