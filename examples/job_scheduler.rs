//! Job-scheduler integration (the paper's §3/§7 extension): more jobs than
//! hardware contexts, with the detector thread's clog marks telling the job
//! scheduler whom to evict — versus an oblivious round-robin scheduler.
//!
//! ```sh
//! cargo run --release --example job_scheduler -- 6
//! ```

use smt_adts::adts::{EvictionPolicy, JobSchedConfig, JobScheduler};
use smt_adts::prelude::*;

fn run(mix: &Mix, eviction: EvictionPolicy) {
    let mut machine = adts::machine_for_mix(mix, 42);
    let cfg = JobSchedConfig {
        adts: AdtsConfig {
            ipc_threshold: 2.0,
            ..Default::default()
        },
        timeslice_quanta: 16,
        eviction,
        ..Default::default()
    };
    // Three jobs wait off-processor beyond the eight resident ones.
    let pool = vec![
        workloads::app("gap"),
        workloads::app("apsi"),
        workloads::app("vortex"),
    ];
    let mut js = JobScheduler::new(cfg, pool);
    let running: Vec<String> = mix.apps.iter().map(|a| a.name.clone()).collect();
    let out = js.run(&mut machine, running, 6);
    println!(
        "{:?} eviction: {:.3} IPC over {} quanta",
        eviction,
        out.series.aggregate_ipc(),
        out.series.quanta.len()
    );
    for (q, tid, out_job, in_job) in &out.swaps {
        println!("  quantum {q:>3}: {tid} {out_job} -> {in_job}");
    }
}

fn main() {
    let mix_id: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let mix = workloads::mix(mix_id);
    println!("mix {} — {}\n", mix.name, mix.description);
    println!("eleven jobs, eight contexts, job-scheduler timeslice = 16 quanta\n");

    run(&mix, EvictionPolicy::ClogMarks);
    println!();
    run(&mix, EvictionPolicy::RoundRobin);

    println!(
        "\nWith clog-mark-assisted eviction the job scheduler suspends the\n\
         thread the DT already identified as clogging the pipeline (and pays\n\
         a smaller residence penalty, having skipped victim analysis); the\n\
         oblivious scheduler rotates blindly and regularly evicts threads\n\
         that were pulling their weight."
    );
}
