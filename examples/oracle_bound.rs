//! Oracle bound: replay every scheduling quantum under each candidate
//! policy (by checkpointing the whole machine) and keep the best — the
//! upper bound the paper's detector-thread heuristics chase, and the
//! motivation quoted in its abstract ("some 30% room for improvement
//! compared to an oracle-scheduled case" on the authors' setup).
//!
//! ```sh
//! cargo run --release --example oracle_bound -- 9 30
//! ```

use smt_adts::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let mix_id: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let quanta: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let mix = workloads::mix(mix_id);
    println!("mix {} — {}\n", mix.name, mix.description);

    // Baseline: fixed ICOUNT on the identical warmed machine.
    let mut machine = adts::machine_for_mix(&mix, 42);
    let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, 6, 8192);
    let baseline_machine = machine.clone();
    let fixed = adts::run_fixed(FetchPolicy::Icount, &mut machine, quanta, 8192);

    // Oracle over the adaptive triple.
    let cfg = OracleConfig::default();
    let mut machine = baseline_machine.clone();
    let oracle = adts::run_oracle(&cfg, &mut machine, quanta);

    println!("fixed ICOUNT : {:.3} IPC", fixed.aggregate_ipc());
    println!(
        "oracle(triple): {:.3} IPC  ({:+.2}% headroom)",
        oracle.aggregate_ipc(),
        100.0 * (oracle.aggregate_ipc() / fixed.aggregate_ipc() - 1.0)
    );

    println!("\nper-quantum oracle choices:");
    print!("  ");
    for q in &oracle.quanta {
        let c = match q.policy.as_str() {
            "ICOUNT" => 'I',
            "BRCOUNT" => 'B',
            "L1MISSCOUNT" => 'M',
            _ => '?',
        };
        print!("{c}");
    }
    println!("\n  (I = ICOUNT, B = BRCOUNT, M = L1MISSCOUNT)");

    let mut counts = std::collections::BTreeMap::new();
    for q in &oracle.quanta {
        *counts.entry(q.policy.clone()).or_insert(0u32) += 1;
    }
    println!("\nchoice distribution: {counts:?}");
    println!("oracle switches: {}", oracle.switches.len());
}
