//! Pipeline view: step the machine and print periodic snapshots of every
//! context's window occupancy, the shared queues and the drain state —
//! useful for building intuition about *how* a clogging thread starves the
//! others.
//!
//! ```sh
//! cargo run --release --example pipeline_view -- 6 5000
//! ```

use smt_adts::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let mix_id: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5_000);
    let mix = workloads::mix(mix_id);
    println!("mix {} — {}\n", mix.name, mix.description);

    let mut machine = adts::machine_for_mix(&mix, 42);
    let mut tsu = Tsu::new(FetchPolicy::Icount, machine.n_threads());

    let step = (cycles / 8).max(1);
    for _ in 0..8 {
        machine.run(step, &mut tsu);
        println!("{}", machine.debug_snapshot());
    }

    println!("cache state after {} cycles:", machine.cycle());
    println!(
        "  L1I miss ratio {:.3}   L1D miss ratio {:.3}   L2 miss ratio {:.3}",
        machine.mem.l1i.miss_ratio(),
        machine.mem.l1d.miss_ratio(),
        machine.mem.l2.miss_ratio()
    );
    println!(
        "  predictor: {} lookups, {} BTB misses",
        machine.bpred.lookups, machine.bpred.btb_misses
    );
}
