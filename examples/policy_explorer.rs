//! Policy explorer: run any mix under every fixed fetch policy and print
//! the per-thread breakdown — the quickest way to see *why* a policy wins
//! (who gets starved, who clogs, who wastes fetch on the wrong path).
//!
//! ```sh
//! cargo run --release --example policy_explorer            # MIX09
//! cargo run --release --example policy_explorer -- 6 30    # mix 6, 30 quanta
//! ```

use smt_adts::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let mix_id: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let quanta: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let mix = workloads::mix(mix_id);
    println!(
        "mix {} — {} ({} quanta)\n",
        mix.name, mix.description, quanta
    );

    println!("{:<14} {:>7}  per-thread committed IPC", "policy", "IPC");
    for policy in FetchPolicy::ALL {
        let mut machine = adts::machine_for_mix(&mix, 42);
        // Warm the caches and predictor under the policy itself.
        let _ = adts::run_fixed(policy, &mut machine, 6, 8192);
        let warm: Vec<u64> = (0..machine.n_threads())
            .map(|t| machine.counters(Tid(t as u8)).committed)
            .collect();
        let c0 = machine.cycle();
        let series = adts::run_fixed(policy, &mut machine, quanta, 8192);
        let dc = (machine.cycle() - c0) as f64;
        let per: Vec<String> = (0..machine.n_threads())
            .map(|t| {
                let c = machine.counters(Tid(t as u8)).committed - warm[t];
                format!("{:.2}", c as f64 / dc)
            })
            .collect();
        println!(
            "{:<14} {:>7.3}  [{}]",
            policy.name(),
            series.aggregate_ipc(),
            per.join(" ")
        );
    }

    // Show the wrong-path waste ICOUNT tolerates from storming threads.
    let mut machine = adts::machine_for_mix(&mix, 42);
    let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, quanta + 6, 8192);
    println!("\nwrong-path fetch share per thread under ICOUNT:");
    for t in 0..machine.n_threads() {
        let c = machine.counters(Tid(t as u8));
        let total = c.fetched + c.wrongpath_fetched;
        println!(
            "  T{t} {:<8} {:>5.1}%  ({} mispredicts, {} squashes)",
            mix.apps[t].name,
            100.0 * c.wrongpath_fetched as f64 / total.max(1) as f64,
            c.mispredicts,
            c.squashes,
        );
    }
}
