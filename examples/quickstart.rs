//! Quickstart: run one program mix under fixed ICOUNT and under the
//! adaptive scheduler, and print the comparison the whole paper is about.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smt_adts::prelude::*;

fn main() {
    // MIX09 is the paper's §1 motivating scenario: four control-intensive
    // integer applications plus four well-behaved ones.
    let mix = workloads::mix(9);
    println!("mix {} — {}", mix.name, mix.description);
    for (i, app) in mix.apps.iter().enumerate() {
        println!("  T{i}: {}", app.name);
    }

    let quanta = 40;
    let quantum_cycles = 8192;

    // Fixed ICOUNT — the best single policy on average.
    let mut machine = adts::machine_for_mix(&mix, 42);
    let fixed = adts::run_fixed(FetchPolicy::Icount, &mut machine, quanta, quantum_cycles);

    // ADTS at the paper's operating point (Type 3, m = 2) — on this
    // substrate's IPC scale the m=2 threshold rarely fires...
    let mut machine = adts::machine_for_mix(&mix, 42);
    let paper_op = adts::run_adaptive(AdtsConfig::default(), &mut machine, quanta);

    // ...so also show the recalibrated operating point (Type 1, m = 4),
    // the best found by `repro fig8` on this machine (EXPERIMENTS.md).
    let mut machine = adts::machine_for_mix(&mix, 42);
    let ours = AdtsConfig {
        ipc_threshold: 4.0,
        heuristic: HeuristicKind::Type1,
        ..Default::default()
    };
    let adaptive = adts::run_adaptive(ours, &mut machine, quanta);

    println!("\nafter {quanta} quanta of {quantum_cycles} cycles:");
    println!("  fixed ICOUNT : {:.3} IPC", fixed.aggregate_ipc());
    println!(
        "  ADTS (T3,m=2): {:.3} IPC  ({:+.1}% vs fixed, {} switches)",
        paper_op.aggregate_ipc(),
        100.0 * (paper_op.aggregate_ipc() / fixed.aggregate_ipc() - 1.0),
        paper_op.switches.len()
    );
    println!(
        "  ADTS (T1,m=4): {:.3} IPC  ({:+.1}% vs fixed)",
        adaptive.aggregate_ipc(),
        100.0 * (adaptive.aggregate_ipc() / fixed.aggregate_ipc() - 1.0)
    );
    println!(
        "  policy switches: {} ({} judged benign)",
        adaptive.switches.len(),
        adaptive
            .switches
            .iter()
            .filter(|s| s.benign == Some(true))
            .count()
    );

    // The per-quantum story: which policy was in force, and what happened.
    println!("\nlast ten quanta under ADTS:");
    println!("  q    policy        IPC   miss/cyc  mispred/cyc");
    for q in adaptive.quanta.iter().rev().take(10).rev() {
        println!(
            "  {:<4} {:<12} {:>5.2}  {:>8.3}  {:>10.4}",
            q.index, q.policy, q.ipc, q.l1_miss_rate, q.mispredict_rate
        );
    }
}
