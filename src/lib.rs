//! # smt-adts
//!
//! A from-scratch Rust reproduction of **"Dynamic Scheduling Issues in SMT
//! Architectures"** (Shin, Lee, Gaudiot — IPDPS 2003): **Adaptive Dynamic
//! Thread Scheduling (ADTS)** with a detector thread, evaluated on a
//! cycle-level simultaneous-multithreading pipeline simulator.
//!
//! This umbrella crate re-exports the workspace's crates under stable
//! module names:
//!
//! - [`isa`] — micro-op model, registers, application profiles;
//! - [`workloads`] — synthetic SPEC CPU2000-class applications, the 13
//!   program mixes, deterministic micro-op stream generators;
//! - [`sim`] — the SMT machine: shared caches, tournament branch
//!   predictor, fetch (ICOUNT2.8 mechanism), rename, split instruction
//!   queues, LSQ, out-of-order issue, in-order commit, wrong-path fetch
//!   and squash;
//! - [`policies`] — the ten fetch policies of the paper's Table 1 and the
//!   thread selection unit;
//! - [`adts`] — the paper's contribution: per-quantum detector-thread
//!   loop, heuristics Type 1–4, switching-history buffer, DT cost model,
//!   per-quantum oracle;
//! - [`stats`] — time series, aggregation, table rendering.
//!
//! ## Quickstart
//!
//! ```
//! use smt_adts::prelude::*;
//!
//! // Eight SPEC-class applications sharing one SMT core.
//! let mix = workloads::mix(9);
//! let mut machine = adts::machine_for_mix(&mix, 42);
//!
//! // Fixed ICOUNT for 20 quanta...
//! let fixed = adts::run_fixed(FetchPolicy::Icount, &mut machine, 20, 8192);
//!
//! // ...vs the adaptive scheduler at the paper's operating point.
//! let mut machine = adts::machine_for_mix(&mix, 42);
//! let adaptive = adts::run_adaptive(AdtsConfig::default(), &mut machine, 20);
//!
//! println!("fixed {:.3} vs adaptive {:.3} IPC",
//!          fixed.aggregate_ipc(), adaptive.aggregate_ipc());
//! ```

pub use adts_core as adts;
pub use smt_isa as isa;
pub use smt_policies as policies;
pub use smt_sim as sim;
pub use smt_stats as stats;
pub use smt_workloads as workloads;

/// The names most programs want in scope.
pub mod prelude {
    pub use crate::{adts, isa, policies, sim, stats, workloads};
    pub use adts_core::{
        AdaptiveScheduler, AdtsConfig, AllocCell, AllocKind, AllocView, AllocationPolicy,
        CondThresholds, DtModel, Heuristic, HeuristicKind, OracleConfig,
    };
    pub use smt_isa::{AppProfile, Tid};
    pub use smt_policies::{FetchPolicy, Tsu};
    pub use smt_sim::{MultiCoreMachine, MultiCoreSnapshot, SimConfig, SmtMachine};
    pub use smt_stats::RunSeries;
    pub use smt_workloads::{app, mix, Mix, UopStream};
}
