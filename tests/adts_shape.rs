//! Shape checks on the adaptive scheduler — the qualitative findings of
//! the paper's Fig 7/Fig 8 at reduced scale (EXPERIMENTS.md records the
//! full-scale versions):
//!
//! - switch count grows with the IPC threshold m;
//! - m = 0 (never low-throughput) equals fixed scheduling exactly;
//! - the benign-switch probability is defined and sane;
//! - Type 3' (gradient guard) never switches more than Type 3.

use smt_adts::prelude::*;

fn adaptive(mix: &Mix, kind: HeuristicKind, m: f64, quanta: u64) -> RunSeries {
    let mut machine = adts::machine_for_mix(mix, 42);
    let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, 4, 8192);
    let cfg = AdtsConfig {
        ipc_threshold: m,
        heuristic: kind,
        ..Default::default()
    };
    adts::run_adaptive(cfg, &mut machine, quanta)
}

#[test]
fn switch_count_grows_with_threshold() {
    let mix = workloads::mix(9);
    let mut last = 0usize;
    let mut grew = 0;
    for m in [1.0, 3.0, 5.0] {
        let s = adaptive(&mix, HeuristicKind::Type3, m, 25);
        if s.switches.len() >= last {
            grew += 1;
        }
        last = s.switches.len();
    }
    assert!(grew >= 2, "switch count should be (weakly) increasing in m");
    // And the extremes must differ decisively.
    let low = adaptive(&mix, HeuristicKind::Type1, 0.5, 25).switches.len();
    let high = adaptive(&mix, HeuristicKind::Type1, 5.0, 25).switches.len();
    assert!(
        high > low,
        "m=5 ({high}) must switch more than m=0.5 ({low})"
    );
}

#[test]
fn zero_threshold_is_fixed_scheduling() {
    let mix = workloads::mix(5);
    let s = adaptive(&mix, HeuristicKind::Type3, 0.0, 15);
    assert!(s.switches.is_empty());
    let mut machine = adts::machine_for_mix(&mix, 42);
    let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, 4, 8192);
    let fixed = adts::run_fixed(FetchPolicy::Icount, &mut machine, 15, 8192);
    assert_eq!(s.aggregate_ipc(), fixed.aggregate_ipc());
}

#[test]
fn benign_fraction_is_a_probability() {
    let mix = workloads::mix(6);
    let s = adaptive(&mix, HeuristicKind::Type2, 5.0, 30);
    let b = s
        .benign_fraction()
        .expect("m=5 must produce judged switches");
    assert!((0.0..=1.0).contains(&b), "benign fraction {b}");
}

#[test]
fn gradient_guard_reduces_switching() {
    // Type 3' = Type 3 + "don't switch while IPC is rising": across mixes
    // it can only remove switch opportunities.
    let mut t3_total = 0usize;
    let mut t3p_total = 0usize;
    for mix_id in [1, 6, 9] {
        let mix = workloads::mix(mix_id);
        t3_total += adaptive(&mix, HeuristicKind::Type3, 5.0, 25).switches.len();
        t3p_total += adaptive(&mix, HeuristicKind::Type3Prime, 5.0, 25)
            .switches
            .len();
    }
    assert!(
        t3p_total <= t3_total,
        "gradient guard increased switching: {t3p_total} vs {t3_total}"
    );
}

#[test]
fn adaptive_switches_move_within_the_triple() {
    let mix = workloads::mix(9);
    for kind in HeuristicKind::ALL {
        let s = adaptive(&mix, kind, 5.0, 25);
        for sw in &s.switches {
            for p in [&sw.from, &sw.to] {
                assert!(
                    ["ICOUNT", "BRCOUNT", "L1MISSCOUNT"].contains(&p.as_str()),
                    "{} left the triple: {sw:?}",
                    kind.name()
                );
            }
            assert_ne!(sw.from, sw.to, "self-switch recorded");
        }
    }
}

#[test]
fn clog_marks_name_plausible_threads() {
    // On the memory-bound mix, clog marks should overwhelmingly point at
    // memory-bound members (they hold pipeline slots without committing).
    let mix = workloads::mix(12); // gzip gcc mcf crafty wupwise swim mesa art
    let mut machine = adts::machine_for_mix(&mix, 42);
    let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, 4, 8192);
    let cfg = AdtsConfig {
        ipc_threshold: 8.0,
        ..Default::default()
    };
    let mut sched = AdaptiveScheduler::new(cfg, machine.n_threads());
    for _ in 0..25 {
        sched.run_quantum(&mut machine);
    }
    let marks = sched.clog_log();
    assert!(!marks.is_empty());
    let memory_bound = ["mcf", "swim", "art", "equake", "ammp"];
    let hits = marks
        .iter()
        .filter(|(_, t)| memory_bound.contains(&mix.apps[t.idx()].name.as_str()))
        .count();
    assert!(
        hits * 2 > marks.len(),
        "clog marks should mostly hit memory-bound threads: {hits}/{}",
        marks.len()
    );
}
