//! Attribution cross-check suite.
//!
//! The slot-accounting layer (`smt_sim::obs::attr`) and the occupancy
//! sampler (`smt_sim::obs::sampler`) measure overlapping quantities from
//! opposite ends of the machine: the sampler diffs the per-thread fetch
//! counters at quantum boundaries, while attribution classifies each fetch
//! slot cycle-by-cycle inside the pipeline. These tests pin that the two
//! instruments agree exactly — per thread, on both the paper's baseline
//! MIX01 and the §1 motivating MIX09, under a fixed policy and under the
//! full adaptive scheduler — and that commit-slot "used" totals reconcile
//! with the committed counters the golden fixtures pin.
//!
//! The suite also carries the decision-audit integration contract: every
//! `PolicySwitch` event in an adaptive traced run must be explained by a
//! `switched` [`adts::DecisionRecord`] with the same endpoints and a
//! non-empty reason.

use smt_adts::prelude::*;
use smt_sim::obs::{AttrSnapshot, CommitCause, FetchCause, MetricsRegistry, PipelineSampler};
use smt_sim::TraceEvent;

const QUANTA: u64 = 8;
const QUANTUM_CYCLES: u64 = 4096;
const SEED: u64 = 42;
/// Large enough that a traced run never wraps (asserted), so the trace
/// holds *every* PolicySwitch event, not a recent suffix.
const EVENTS_CAP: usize = 1 << 21;

const USED_F: usize = FetchCause::Used as usize;
const USED_C: usize = CommitCause::Used as usize;

/// Per-thread fetch-slot totals as the sampler counted them.
fn sampler_fetch_totals(reg: &mut MetricsRegistry, n: usize) -> Vec<u64> {
    (0..n)
        .map(|t| {
            let c = reg.counter(&format!("thread{t}_fetch_slots"));
            reg.counter_value(c)
        })
        .collect()
}

/// Assert the two instruments and the architectural counters agree.
fn check_agreement(label: &str, snap: &AttrSnapshot, sampler: Vec<u64>, machine: &SmtMachine) {
    let counters = machine.counter_snapshot();
    assert_eq!(snap.threads.len(), sampler.len(), "{label}: thread counts");
    for (t, stack) in snap.threads.iter().enumerate() {
        assert_eq!(
            stack.fetch[USED_F], sampler[t],
            "{label}: thread {t} fetch-used attribution vs sampler counter"
        );
        let c = &counters.threads[t];
        assert_eq!(
            stack.fetch[USED_F],
            c.fetched + c.wrongpath_fetched,
            "{label}: thread {t} fetch-used attribution vs architectural counters"
        );
        assert_eq!(
            stack.commit[USED_C], c.committed,
            "{label}: thread {t} commit-used attribution vs committed counter"
        );
    }
}

/// Fixed-ICOUNT run with trace, attribution and the sampler all live from
/// cycle zero (the sampler's deltas are taken from machine creation, so
/// the instruments only line up when they start together).
fn fixed_crosscheck(mix_id: usize) {
    let mix = workloads::mix(mix_id);
    let mut machine = adts::machine_for_mix(&mix, SEED);
    machine.enable_trace(EVENTS_CAP);
    machine.enable_attr();
    let mut reg = MetricsRegistry::new();
    let mut sampler = PipelineSampler::new(&mut reg, &machine);
    adts::run_fixed_sampled(
        FetchPolicy::Icount,
        &mut machine,
        QUANTA,
        QUANTUM_CYCLES,
        |_, m, _| sampler.sample(m, &mut reg),
    );
    let snap = machine
        .disable_attr()
        .expect("attribution was enabled")
        .snapshot();
    assert_eq!(snap.cycles, QUANTA * QUANTUM_CYCLES);
    let totals = sampler_fetch_totals(&mut reg, machine.n_threads());
    check_agreement(&format!("MIX{mix_id:02}/ICOUNT"), &snap, totals, &machine);
}

/// Adaptive run with the same three instruments; returns everything the
/// switch-audit test needs as well.
struct AdaptiveCapture {
    snap: AttrSnapshot,
    sampler_totals: Vec<u64>,
    machine: SmtMachine,
    series: RunSeries,
    audit: Vec<adts::DecisionRecord>,
    switch_events: Vec<(u8, u8)>,
    dropped: bool,
}

fn adaptive_crosscheck(mix_id: usize) -> AdaptiveCapture {
    let mix = workloads::mix(mix_id);
    let mut machine = adts::machine_for_mix(&mix, SEED);
    machine.enable_trace(EVENTS_CAP);
    machine.enable_attr();
    let mut reg = MetricsRegistry::new();
    let mut sampler = PipelineSampler::new(&mut reg, &machine);
    let cfg = AdtsConfig {
        quantum_cycles: QUANTUM_CYCLES,
        // Unattainable threshold: the heuristic runs every quantum, so the
        // run actually exercises switching.
        ipc_threshold: 8.0,
        ..AdtsConfig::default()
    };
    let mut sched = AdaptiveScheduler::new(cfg, machine.n_threads());
    for _ in 0..QUANTA {
        sched.run_quantum(&mut machine);
        sampler.sample(&machine, &mut reg);
    }
    machine.check_invariants();
    let snap = machine
        .disable_attr()
        .expect("attribution was enabled")
        .snapshot();
    let buf = machine.disable_trace().expect("trace was enabled");
    let dropped = buf.recorded > buf.len() as u64;
    let switch_events = buf
        .events()
        .filter_map(|ev| match *ev {
            TraceEvent::PolicySwitch { from, to, .. } => Some((from, to)),
            _ => None,
        })
        .collect();
    let sampler_totals = sampler_fetch_totals(&mut reg, machine.n_threads());
    let (series, audit) = sched.into_recordings();
    AdaptiveCapture {
        snap,
        sampler_totals,
        machine,
        series,
        audit: audit.iter().cloned().collect(),
        switch_events,
        dropped,
    }
}

#[test]
fn fixed_mix01_sampler_and_attribution_agree() {
    fixed_crosscheck(1);
}

#[test]
fn fixed_mix09_sampler_and_attribution_agree() {
    fixed_crosscheck(9);
}

#[test]
fn adaptive_mix01_sampler_and_attribution_agree() {
    let cap = adaptive_crosscheck(1);
    check_agreement("MIX01/adts", &cap.snap, cap.sampler_totals, &cap.machine);
}

#[test]
fn adaptive_mix09_sampler_and_attribution_agree() {
    let cap = adaptive_crosscheck(9);
    check_agreement("MIX09/adts", &cap.snap, cap.sampler_totals, &cap.machine);
}

/// The acceptance contract: every `PolicySwitch` the trace saw must be
/// explained by a `switched` decision record with the same endpoints and a
/// non-empty reason. Switches land one quantum after they are decided, so
/// the landed events form a prefix of the switched records — at most one
/// trailing decision may still be pending when the run ends.
#[test]
fn every_policy_switch_has_a_matching_decision_record() {
    let cap = adaptive_crosscheck(1);
    assert!(!cap.dropped, "trace wrapped; raise EVENTS_CAP");
    assert!(
        !cap.switch_events.is_empty(),
        "m=8 must force at least one landed switch on MIX01"
    );
    assert_eq!(cap.audit.len(), QUANTA as usize, "one record per quantum");

    let switched: Vec<&adts::DecisionRecord> = cap.audit.iter().filter(|r| r.switched).collect();
    assert_eq!(
        cap.series.switches.len(),
        switched.len(),
        "series switch log and audit must agree"
    );
    assert!(
        cap.switch_events.len() >= switched.len().saturating_sub(1)
            && cap.switch_events.len() <= switched.len(),
        "landed switches ({}) must be all decided switches ({}) minus at \
         most one trailing pending decision",
        cap.switch_events.len(),
        switched.len()
    );
    for (i, &(from, to)) in cap.switch_events.iter().enumerate() {
        let rec = switched[i];
        assert_eq!(
            rec.incumbent.id(),
            from,
            "switch {i}: trace `from` vs audited incumbent"
        );
        assert_eq!(
            rec.chosen.id(),
            to,
            "switch {i}: trace `to` vs audited choice"
        );
        assert!(
            !rec.reason.name().is_empty(),
            "switch {i}: audited decision must carry a reason"
        );
        assert!(
            rec.trace.is_some(),
            "switch {i}: a below-threshold decision must carry its trace"
        );
    }
}
