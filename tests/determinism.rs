//! Full-stack determinism: identical (seed, config) must give identical
//! results through workloads → machine → policies → ADTS, because the
//! oracle scheduler and every experiment in EXPERIMENTS.md depend on it.

use smt_adts::prelude::*;

fn fixed_run(seed: u64, policy: FetchPolicy) -> (f64, u64) {
    let mix = workloads::mix(5);
    let mut machine = adts::machine_for_mix(&mix, seed);
    let series = adts::run_fixed(policy, &mut machine, 12, 4096);
    (series.aggregate_ipc(), machine.total_committed())
}

#[test]
fn fixed_runs_replay_exactly() {
    for policy in [
        FetchPolicy::Icount,
        FetchPolicy::BrCount,
        FetchPolicy::RoundRobin,
    ] {
        assert_eq!(
            fixed_run(7, policy),
            fixed_run(7, policy),
            "{}",
            policy.name()
        );
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        fixed_run(7, FetchPolicy::Icount),
        fixed_run(8, FetchPolicy::Icount)
    );
}

#[test]
fn adaptive_runs_replay_exactly() {
    let run = |kind: HeuristicKind| {
        let mix = workloads::mix(9);
        let mut machine = adts::machine_for_mix(&mix, 11);
        let cfg = AdtsConfig {
            ipc_threshold: 4.0,
            heuristic: kind,
            quantum_cycles: 4096,
            ..Default::default()
        };
        let s = adts::run_adaptive(cfg, &mut machine, 15);
        (
            s.aggregate_ipc(),
            s.switches.len(),
            format!("{:?}", s.switches),
        )
    };
    for kind in HeuristicKind::ALL {
        assert_eq!(run(kind), run(kind), "{}", kind.name());
    }
}

#[test]
fn machine_clone_forks_identically() {
    let mix = workloads::mix(12);
    let mut machine = adts::machine_for_mix(&mix, 3);
    let mut tsu = Tsu::new(FetchPolicy::Icount, 8);
    machine.run(20_000, &mut tsu);
    let mut a = machine.clone();
    let mut b = machine;
    let mut tsu_b = tsu;
    a.run(20_000, &mut tsu);
    b.run(20_000, &mut tsu_b);
    assert_eq!(a.total_committed(), b.total_committed());
    assert_eq!(a.global(), b.global());
    for t in 0..8 {
        assert_eq!(a.counters(Tid(t)), b.counters(Tid(t)), "thread {t}");
    }
}

/// Determinism must extend to the *bytes*: the sweep cache stores
/// serialized `RunSeries` and replays them verbatim on warm runs, so two
/// identical runs must serialize identically — IPC equality alone would
/// let float-formatting or map-ordering drift hide there.
#[test]
fn fixed_series_serializes_bit_identically_across_replays() {
    let run = || {
        let mix = workloads::mix(7);
        let mut machine = adts::machine_for_mix(&mix, 21);
        serde::json::to_string(&adts::run_fixed(
            FetchPolicy::Icount,
            &mut machine,
            10,
            4096,
        ))
    };
    let first = run();
    assert_eq!(run(), first);
    assert!(
        first.contains("\"quanta\""),
        "serialized form exposes the quantum series"
    );
}

#[test]
fn adaptive_series_serializes_bit_identically_across_replays() {
    let run = || {
        let mix = workloads::mix(3);
        let mut machine = adts::machine_for_mix(&mix, 17);
        let cfg = AdtsConfig {
            ipc_threshold: 4.0,
            quantum_cycles: 4096,
            ..Default::default()
        };
        serde::json::to_string(&adts::run_adaptive(cfg, &mut machine, 12))
    };
    assert_eq!(run(), run());
}

/// A `RunSeries` pulled back out of its JSON must be indistinguishable
/// from the original — this is exactly what a warm cache hit does.
#[test]
fn run_series_round_trips_through_json_losslessly() {
    let mix = workloads::mix(11);
    let mut machine = adts::machine_for_mix(&mix, 29);
    let series = adts::run_fixed(FetchPolicy::BrCount, &mut machine, 8, 4096);
    let json = serde::json::to_string(&series);
    let back: stats::RunSeries = serde::json::from_str(&json).expect("RunSeries deserializes");
    assert_eq!(serde::json::to_string(&back), json);
    assert_eq!(back.aggregate_ipc(), series.aggregate_ipc());
    assert_eq!(back.quanta.len(), series.quanta.len());
}

#[test]
fn oracle_is_replayable() {
    let cfg = OracleConfig {
        quantum_cycles: 2048,
        ..Default::default()
    };
    let run = || {
        let mix = workloads::mix(4);
        let mut machine = adts::machine_for_mix(&mix, 5);
        adts::run_oracle(&cfg, &mut machine, 6)
            .quanta
            .iter()
            .map(|q| q.policy.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
