//! Golden *batch* conformance suite.
//!
//! Replays every committed golden fixture through the lockstep batch
//! engine: each canonical (mix, threads) point becomes one
//! [`MachineBatch`] whose cells are the ten fixed fetch policies (plus,
//! on MIX01 t8, the pinned ADTS point), all sharing one seed-42 machine.
//! The recorded observables must reproduce the committed fixture bytes
//! **exactly** — the same bytes `golden_trace.rs` pins for scalar
//! stepping, so batched and scalar stepping can never drift apart without
//! a test naming the divergence.
//!
//! This suite never blesses; fixtures are owned by `golden_trace.rs`. On
//! divergence the shared semantic differ reports the offending cell (the
//! policy) and the first divergent quantum.

#[path = "golden_common/mod.rs"]
mod golden_common;

use golden_common::{
    adaptive_fixture_path, bless_requested, canonical_points, compare_adaptive, compare_traces,
    fixture_path, mix_for, AdaptiveGolden, GoldenTrace, PolicyTrace, QUANTA, QUANTUM_CYCLES,
    SCHEMA, SEED,
};
use smt_adts::prelude::*;
use smt_sim::MachineBatch;

/// The pinned ADTS configuration of the adaptive golden point.
fn adaptive_cfg() -> adts::AdtsConfig {
    adts::AdtsConfig {
        quantum_cycles: QUANTUM_CYCLES,
        ipc_threshold: 8.0,
        ..adts::AdtsConfig::default()
    }
}

fn policy_trace(
    policy: FetchPolicy,
    series: &RunSeries,
    finals: smt_sim::CounterSnapshot,
) -> PolicyTrace {
    PolicyTrace {
        policy: policy.name().to_string(),
        quantum_cycles: series.quanta.iter().map(|q| q.cycles).collect(),
        quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
        quantum_ipc_milli: series
            .quanta
            .iter()
            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
            .collect(),
        final_counters: finals,
    }
}

/// Record one canonical point with every policy as a cell of a single
/// lockstep batch. On MIX01 t8 the pinned adaptive point rides along as an
/// extra cell of the same batch, and its golden record is returned too.
fn record_batched(mix_id: usize, threads: usize) -> (GoldenTrace, Option<AdaptiveGolden>) {
    let mix = mix_for(mix_id, threads);
    let machine = adts::machine_for_mix(&mix, SEED);
    let n = machine.n_threads();
    let mut cells: Vec<adts::PointCell> = FetchPolicy::ALL
        .iter()
        .map(|&p| adts::PointCell::fixed(p, QUANTUM_CYCLES))
        .collect();
    let with_adaptive = (mix_id, threads) == (1, 8);
    if with_adaptive {
        cells.push(adts::PointCell::adaptive(adaptive_cfg(), n));
    }
    let mut batch = MachineBatch::new(machine, cells);
    for _ in 0..QUANTA {
        batch.run_quantum();
    }
    let finals: Vec<smt_sim::CounterSnapshot> = (0..batch.n_cells())
        .map(|i| {
            let m = batch.machine_for(i);
            m.check_invariants();
            m.counter_snapshot()
        })
        .collect();
    let mut series = batch
        .into_cells()
        .into_iter()
        .map(adts::PointCell::into_series);

    let policies = FetchPolicy::ALL
        .iter()
        .zip(finals.iter())
        .map(|(&p, f)| policy_trace(p, &series.next().expect("fixed cell series"), f.clone()))
        .collect();
    let trace = GoldenTrace {
        schema: SCHEMA,
        mix: mix.name.clone(),
        threads,
        seed: SEED,
        quanta: QUANTA,
        quantum_cycles: QUANTUM_CYCLES,
        policies,
    };

    let adaptive = with_adaptive.then(|| {
        let s = series.next().expect("adaptive cell series");
        let cfg = adaptive_cfg();
        AdaptiveGolden {
            schema: SCHEMA,
            mix: mix.name.clone(),
            threads,
            seed: SEED,
            quanta: QUANTA,
            quantum_cycles: QUANTUM_CYCLES,
            ipc_threshold_milli: (cfg.ipc_threshold * 1000.0) as u64,
            heuristic: cfg.heuristic.name().to_string(),
            quantum_policy: s.quanta.iter().map(|q| q.policy.clone()).collect(),
            quantum_committed: s.quanta.iter().map(|q| q.committed).collect(),
            quantum_ipc_milli: s
                .quanta
                .iter()
                .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
                .collect(),
            switch_quantum: s.switches.iter().map(|sw| sw.quantum).collect(),
            switch_from: s.switches.iter().map(|sw| sw.from.clone()).collect(),
            switch_to: s.switches.iter().map(|sw| sw.to.clone()).collect(),
            final_counters: finals.last().expect("adaptive finals").clone(),
        }
    });
    (trace, adaptive)
}

fn check_batched(mix_id: usize, threads: usize) {
    if bless_requested() {
        return; // fixtures are owned (and possibly mid-refresh) by golden_trace
    }
    let path = fixture_path(mix_id, threads);
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        )
    });
    let (trace, adaptive) = record_batched(mix_id, threads);
    let fresh = serde::json::to_string(&trace);
    if fresh != committed {
        let old: GoldenTrace = serde::json::from_str(&committed).expect("parse committed fixture");
        match compare_traces(&old, &trace) {
            Err(msg) => panic!(
                "batched replay of golden fixture {}: {msg}\n\
                 the offending cell is the named policy; scalar stepping \
                 (golden_trace) passing while this fails means the batch \
                 engine diverged",
                path.display()
            ),
            Ok(()) => panic!(
                "batched replay of {} is semantically equal but not \
                 byte-identical; the JSON serializer lost canonical formatting",
                path.display()
            ),
        }
    }
    let Some(adaptive) = adaptive else { return };
    let path = adaptive_fixture_path();
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing adaptive golden fixture {} ({e})", path.display()));
    let fresh = serde::json::to_string(&adaptive);
    if fresh != committed {
        let old: AdaptiveGolden =
            serde::json::from_str(&committed).expect("parse committed fixture");
        match compare_adaptive(&old, &adaptive, &[]) {
            Err(msg) => panic!(
                "batched replay of adaptive golden fixture {}: {msg}\n\
                 the offending cell is the ADTS point",
                path.display()
            ),
            Ok(()) => panic!(
                "batched replay of {} is semantically equal but not \
                 byte-identical; the JSON serializer lost canonical formatting",
                path.display()
            ),
        }
    }
}

#[test]
fn batched_golden_mix01_t8_with_adaptive_cell() {
    check_batched(1, 8);
}

#[test]
fn batched_golden_mix09_t8() {
    check_batched(9, 8);
}

#[test]
fn batched_golden_mix13_t8() {
    check_batched(13, 8);
}

#[test]
fn batched_golden_mix01_t4() {
    check_batched(1, 4);
}

#[test]
fn batched_golden_mix01_t2() {
    check_batched(1, 2);
}

#[test]
fn batched_golden_mix05_t4() {
    check_batched(5, 4);
}

#[test]
fn batched_golden_mix09_t2() {
    check_batched(9, 2);
}

/// The batched suite must cover exactly the scalar suite's canonical
/// points (one test above per entry); this meta-test catches drift.
#[test]
fn batched_suite_covers_all_canonical_points() {
    assert_eq!(
        canonical_points(),
        vec![(1, 8), (9, 8), (13, 8), (1, 4), (1, 2), (5, 4), (9, 2)],
        "canonical point list changed; add/remove batched_golden_* tests to match"
    );
}
