//! Shared scaffolding of the golden conformance suites.
//!
//! `golden_trace.rs` (scalar stepping, owns fixture generation/blessing)
//! and `golden_batch.rs` (lockstep batched stepping, replay-only) pin the
//! *same* fixture bytes; the fixture schema, the canonical point list and
//! the semantic differs live here so the two suites cannot drift apart.
//!
//! Each test crate includes this via `#[path = "golden_common/mod.rs"]`
//! and uses a subset of the items, hence the `dead_code` allowance.

#![allow(dead_code)]

use serde::{Deserialize, Serialize};
use smt_adts::prelude::*;
use smt_sim::CounterSnapshot;
use std::path::PathBuf;

pub const QUANTA: u64 = 16;
pub const QUANTUM_CYCLES: u64 = 4096;
pub const SEED: u64 = 42;
/// Bump only alongside an intended fixture refresh.
pub const SCHEMA: u32 = 1;

/// One policy's pinned observables for a mix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyTrace {
    pub policy: String,
    /// Per-quantum cycle counts (constant here, but pinned anyway).
    pub quantum_cycles: Vec<u64>,
    /// Per-quantum committed micro-ops.
    pub quantum_committed: Vec<u64>,
    /// Per-quantum IPC in milli-instructions-per-cycle (integer so the
    /// fixture is exact regardless of float formatting).
    pub quantum_ipc_milli: Vec<u64>,
    /// Every thread's full counter state after the last quantum.
    pub final_counters: CounterSnapshot,
}

/// The whole fixture for one (mix, thread-count) point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GoldenTrace {
    pub schema: u32,
    pub mix: String,
    pub threads: usize,
    pub seed: u64,
    pub quanta: u64,
    pub quantum_cycles: u64,
    pub policies: Vec<PolicyTrace>,
}

/// The canonical points: the three paper-representative 8-thread mixes
/// (baseline MIX01, the §1 motivating MIX09, homogeneous MIX13), the
/// 4- and 2-thread reductions of MIX01 used by the perf baseline, and two
/// cross-checks off the MIX01 axis (memory-heavy MIX05 at 4 threads,
/// MIX09 at 2) so reduced-thread behavior is pinned on more than one mix.
pub fn canonical_points() -> Vec<(usize, usize)> {
    vec![(1, 8), (9, 8), (13, 8), (1, 4), (1, 2), (5, 4), (9, 2)]
}

pub fn mix_for(id: usize, threads: usize) -> Mix {
    let m = workloads::mix(id);
    if threads == m.apps.len() {
        m
    } else {
        m.take_threads(threads, 7)
    }
}

pub fn fixture_path(mix_id: usize, threads: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("mix{mix_id:02}_t{threads}.json"))
}

pub fn adaptive_fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/mix01_t8_adts.json")
}

// ---------------------------------------------------------------------------
// Trace-backed golden points (`golden_trace_replay.rs`).
//
// Replays of *committed capture files* under the full policy matrix, pinned
// with the same `GoldenTrace` schema and differs as the synthetic points
// above. The scale is reduced so the binary trace fixtures stay small
// enough to commit: each point's capture spans one ICOUNT warmup quantum
// plus `TRACE_QUANTA` measured quanta of `TRACE_QUANTUM_CYCLES` cycles.
// ---------------------------------------------------------------------------

pub const TRACE_QUANTA: u64 = 6;
pub const TRACE_QUANTUM_CYCLES: u64 = 1024;
pub const TRACE_WARMUP_QUANTA: u64 = 1;

/// The trace-backed points: the perf-baseline 2-thread MIX01 reduction and
/// the memory-heavy MIX05 at 4 threads (both already pinned synthetically,
/// so a replay divergence isolates the trace path, not the machine).
pub fn trace_points() -> Vec<(usize, usize)> {
    vec![(1, 2), (5, 4)]
}

/// The committed binary capture for a trace point.
pub fn trace_capture_path(mix_id: usize, threads: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("traces")
        .join(format!("mix{mix_id:02}_t{threads}.smttrace"))
}

/// The pinned replay observables for a trace point.
pub fn trace_fixture_path(mix_id: usize, threads: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("trace_mix{mix_id:02}_t{threads}.json"))
}

// ---------------------------------------------------------------------------
// Multi-core golden points (`golden_multicore.rs`).
//
// The N=1 half of that suite replays every fixture above byte-for-byte
// through `MultiCoreMachine::single`; these constants scope the genuinely
// multi-core half: 2-core allocation runs whose placement is re-decided
// every quantum by an allocation policy, with a nonzero migration
// penalty so the cost model is pinned too.
// ---------------------------------------------------------------------------

/// Cold-frontend fetch hold per migration in the pinned points, cycles.
pub const MC_MIGRATION_PENALTY: u64 = 256;

/// The multi-core points: (mix, threads, cores) — the 2-thread MIX01 and
/// 4-thread MIX05 reductions already pinned at N=1, each on 2 cores.
pub fn multicore_points() -> Vec<(usize, usize, usize)> {
    vec![(1, 2, 2), (5, 4, 2)]
}

/// The allocation policies each multi-core point pins: the maximum-churn
/// rotation (every quantum migrates every thread) and the feedback-driven
/// greedy rebalance.
pub fn multicore_allocs() -> Vec<&'static str> {
    vec!["rotate", "ipc-greedy"]
}

pub fn multicore_fixture_path(mix_id: usize, threads: usize, cores: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("mc{cores}_mix{mix_id:02}_t{threads}.json"))
}

/// One allocation policy's pinned observables for a multi-core point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AllocTrace {
    pub alloc: String,
    pub fetch: String,
    /// Per-quantum committed micro-ops, all cores.
    pub quantum_committed: Vec<u64>,
    /// Per-quantum chip IPC in milli-instructions-per-cycle.
    pub quantum_ipc_milli: Vec<u64>,
    /// Final per-global-thread migration counts.
    pub migrations: Vec<u64>,
    /// Every global thread's full counter state after the last quantum.
    pub final_counters: CounterSnapshot,
}

/// The whole fixture for one (mix, threads, cores) point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiGolden {
    pub schema: u32,
    pub mix: String,
    pub threads: usize,
    pub cores: usize,
    pub seed: u64,
    pub quanta: u64,
    pub quantum_cycles: u64,
    pub migration_penalty: u64,
    pub allocs: Vec<AllocTrace>,
}

/// Semantic comparison of a committed multi-core fixture vs a fresh
/// recording, naming the first divergence.
pub fn compare_multi(old: &MultiGolden, new: &MultiGolden) -> Result<(), String> {
    if old == new {
        return Ok(());
    }
    for (oa, na) in old.allocs.iter().zip(&new.allocs) {
        let at = format!(
            "for {}+{} on {} (t{} c{})",
            na.alloc, na.fetch, new.mix, new.threads, new.cores
        );
        for (what, o, n) in [
            (
                "per-quantum commits",
                &oa.quantum_committed,
                &na.quantum_committed,
            ),
            (
                "per-quantum IPC",
                &oa.quantum_ipc_milli,
                &na.quantum_ipc_milli,
            ),
            ("migration counts", &oa.migrations, &na.migrations),
        ] {
            if o != n {
                return Err(match o.iter().zip(n).position(|(a, b)| a != b) {
                    Some(i) => format!(
                        "{what} diverged {at}: index {i}: fixture {} vs fresh {}",
                        o[i], n[i]
                    ),
                    None => format!("{what} diverged {at}: length {} vs {}", o.len(), n.len()),
                });
            }
        }
        if oa.final_counters != na.final_counters {
            return Err(format!("final counters diverged {at}"));
        }
    }
    Err(format!(
        "multi-core golden structure diverged for {} (t{} c{})",
        new.mix, new.threads, new.cores
    ))
}

pub fn bless_requested() -> bool {
    std::env::var("SMT_GOLDEN_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Locate the first differing quantum in a pinned per-quantum series.
pub fn first_vec_diff(
    what: &str,
    old: &[u64],
    new: &[u64],
    policy: &str,
    trace: &GoldenTrace,
) -> Option<String> {
    if old == new {
        return None;
    }
    let at = format!("for {} on {} (t{})", policy, trace.mix, trace.threads);
    Some(match old.iter().zip(new).position(|(a, b)| a != b) {
        Some(i) => format!(
            "{what} diverged {at}: quantum {i}: fixture {} vs fresh {}",
            old[i], new[i]
        ),
        None => format!(
            "{what} diverged {at}: length {} vs {}",
            old.len(),
            new.len()
        ),
    })
}

/// Semantic comparison of committed fixture vs fresh recording, naming the
/// first divergence so the failure report is actionable. `Ok(())` iff the
/// decoded structures are equal.
pub fn compare_traces(old: &GoldenTrace, new: &GoldenTrace) -> Result<(), String> {
    if old == new {
        return Ok(());
    }
    for (op, np) in old.policies.iter().zip(&new.policies) {
        if let Some(msg) = first_vec_diff(
            "per-quantum IPC",
            &op.quantum_ipc_milli,
            &np.quantum_ipc_milli,
            &np.policy,
            new,
        ) {
            return Err(msg);
        }
        if let Some(msg) = first_vec_diff(
            "per-quantum commits",
            &op.quantum_committed,
            &np.quantum_committed,
            &np.policy,
            new,
        ) {
            return Err(msg);
        }
        if op.final_counters != np.final_counters {
            return Err(format!(
                "final counters diverged for {} on {} (t{})",
                np.policy, new.mix, new.threads
            ));
        }
    }
    Err(format!(
        "golden trace structure diverged for {} (t{})",
        new.mix, new.threads
    ))
}

/// The pinned observables of the adaptive point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveGolden {
    pub schema: u32,
    pub mix: String,
    pub threads: usize,
    pub seed: u64,
    pub quanta: u64,
    pub quantum_cycles: u64,
    /// Threshold m in milli-IPC (integer so the fixture is exact).
    pub ipc_threshold_milli: u64,
    pub heuristic: String,
    pub quantum_policy: Vec<String>,
    pub quantum_committed: Vec<u64>,
    pub quantum_ipc_milli: Vec<u64>,
    pub switch_quantum: Vec<u64>,
    pub switch_from: Vec<String>,
    pub switch_to: Vec<String>,
    pub final_counters: CounterSnapshot,
}

/// Decision audit for quantum `i`, as a one-line JSON suffix for failure
/// messages (the audit explains *why* the fresh run scheduled what it did).
/// Replay-only suites that have no audit pass an empty slice.
pub fn audit_suffix(audit: &[adts::DecisionRecord], quantum: usize) -> String {
    match audit.get(quantum) {
        Some(rec) => format!(
            "\nfirst divergent quantum's decision audit: {}",
            serde::json::to_string(rec)
        ),
        None => String::new(),
    }
}

/// Compare the committed adaptive fixture against a fresh recording,
/// attaching the decision-audit record of the first divergent quantum.
pub fn compare_adaptive(
    old: &AdaptiveGolden,
    new: &AdaptiveGolden,
    audit: &[adts::DecisionRecord],
) -> Result<(), String> {
    if old == new {
        return Ok(());
    }
    fn first_diff<T: PartialEq + std::fmt::Debug>(
        what: &str,
        old: &[T],
        new: &[T],
    ) -> Option<(usize, String)> {
        if old == new {
            return None;
        }
        Some(match old.iter().zip(new).position(|(a, b)| a != b) {
            Some(i) => (
                i,
                format!(
                    "{what} diverged at quantum {i}: fixture {:?} vs fresh {:?}",
                    old[i], new[i]
                ),
            ),
            None => (
                old.len().min(new.len()),
                format!("{what} diverged: length {} vs {}", old.len(), new.len()),
            ),
        })
    }
    for (what, o, n) in [
        (
            "per-quantum policy",
            &old.quantum_policy,
            &new.quantum_policy,
        ),
        ("switch-from", &old.switch_from, &new.switch_from),
        ("switch-to", &old.switch_to, &new.switch_to),
    ] {
        if let Some((i, msg)) = first_diff(what, o, n) {
            // Switch vectors index switches, not quanta: map back through
            // the switch's quantum where possible.
            let q = if what == "per-quantum policy" {
                i
            } else {
                new.switch_quantum.get(i).copied().unwrap_or(i as u64) as usize
            };
            return Err(format!("{msg}{}", audit_suffix(audit, q)));
        }
    }
    for (what, o, n) in [
        (
            "per-quantum commits",
            &old.quantum_committed,
            &new.quantum_committed,
        ),
        (
            "per-quantum IPC",
            &old.quantum_ipc_milli,
            &new.quantum_ipc_milli,
        ),
        ("switch quantum", &old.switch_quantum, &new.switch_quantum),
    ] {
        if let Some((i, msg)) = first_diff(what, o, n) {
            return Err(format!("{msg}{}", audit_suffix(audit, i)));
        }
    }
    if old.final_counters != new.final_counters {
        return Err("adaptive final counters diverged".to_string());
    }
    Err("adaptive golden structure diverged".to_string())
}
