//! Checkpoint-continuation conformance: interrupting a canonical golden
//! run at a quantum boundary, round-tripping the machine through the
//! binary [`MachineSnapshot`] container, and replaying the remaining
//! quanta must reproduce the committed fixture **exactly** — same
//! per-quantum series, same final counters.
//!
//! This is the end-to-end guarantee the warm pool and the on-disk
//! checkpoint store rely on: a restored machine is indistinguishable from
//! one that never stopped, measured against the same fixtures that pin
//! uninterrupted behavior in `golden_trace.rs`.

use serde::{Deserialize, Serialize};
use smt_adts::prelude::*;
use smt_sim::snapshot::MachineSnapshot;
use smt_sim::CounterSnapshot;
use std::path::PathBuf;

const QUANTA: u64 = 16;
const QUANTUM_CYCLES: u64 = 4096;
const SEED: u64 = 42;

/// Mirror of the fixture schema in `golden_trace.rs` (kept private there
/// on purpose: this suite must read the committed bytes, not share code
/// with the generator).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct PolicyTrace {
    policy: String,
    quantum_cycles: Vec<u64>,
    quantum_committed: Vec<u64>,
    quantum_ipc_milli: Vec<u64>,
    final_counters: CounterSnapshot,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct GoldenTrace {
    schema: u32,
    mix: String,
    threads: usize,
    seed: u64,
    quanta: u64,
    quantum_cycles: u64,
    policies: Vec<PolicyTrace>,
}

fn fixture(mix_id: usize, threads: usize) -> GoldenTrace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("mix{mix_id:02}_t{threads}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e})", path.display()));
    serde::json::from_str(&text).expect("parse committed fixture")
}

fn mix_for(id: usize, threads: usize) -> Mix {
    let m = workloads::mix(id);
    if threads == m.apps.len() {
        m
    } else {
        m.take_threads(threads, 7)
    }
}

fn ipc_milli(committed: u64, cycles: u64) -> u64 {
    committed.saturating_mul(1000) / cycles.max(1)
}

/// Run `split` quanta, checkpoint through the full binary container,
/// replay the rest on the restored machine, and compare the stitched
/// observables against the committed fixture for every policy.
fn check_continuation(mix_id: usize, threads: usize, split: u64) {
    assert!(split > 0 && split < QUANTA);
    let fix = fixture(mix_id, threads);
    assert_eq!(fix.quanta, QUANTA);
    assert_eq!(fix.quantum_cycles, QUANTUM_CYCLES);
    let mix = mix_for(mix_id, threads);
    for pinned in &fix.policies {
        let policy = FetchPolicy::ALL
            .iter()
            .copied()
            .find(|p| p.name() == pinned.policy)
            .unwrap_or_else(|| panic!("fixture names unknown policy {}", pinned.policy));
        let mut machine = adts::machine_for_mix(&mix, SEED);
        let head = adts::run_fixed(policy, &mut machine, split, QUANTUM_CYCLES);

        let bytes = MachineSnapshot::capture(&machine).to_bytes();
        let mut resumed = MachineSnapshot::from_bytes(&bytes)
            .expect("decode checkpoint")
            .restore();
        resumed.check_invariants();

        let tail = adts::run_fixed(policy, &mut resumed, QUANTA - split, QUANTUM_CYCLES);

        let at = format!(
            "for {} on {} (t{threads}), split at quantum {split}",
            pinned.policy, fix.mix
        );
        let committed: Vec<u64> = head
            .quanta
            .iter()
            .chain(tail.quanta.iter())
            .map(|q| q.committed)
            .collect();
        assert_eq!(
            committed, pinned.quantum_committed,
            "stitched per-quantum commits diverge from the fixture {at}"
        );
        let ipc: Vec<u64> = head
            .quanta
            .iter()
            .chain(tail.quanta.iter())
            .map(|q| ipc_milli(q.committed, q.cycles))
            .collect();
        assert_eq!(
            ipc, pinned.quantum_ipc_milli,
            "stitched per-quantum IPC diverges from the fixture {at}"
        );
        assert_eq!(
            resumed.counter_snapshot(),
            pinned.final_counters,
            "final counters after checkpointed replay diverge {at}"
        );
    }
}

/// The canonical 8-thread baseline, interrupted where the warm pool
/// actually checkpoints experiment runs (after a warmup-sized prefix).
#[test]
fn continuation_matches_golden_mix01_t8() {
    check_continuation(1, 8, 6);
}

/// A reduced-thread point with a late split: the checkpoint carries the
/// bulk of the run instead of a warmup prefix.
#[test]
fn continuation_matches_golden_mix09_t2() {
    check_continuation(9, 2, 12);
}
