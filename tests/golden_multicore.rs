//! Multi-core golden conformance suite.
//!
//! Two halves:
//!
//! 1. **N=1 bit-identity** — a 1-core `MultiCoreMachine` (shared-L2
//!    rotation and all) replays *every* committed golden fixture
//!    byte-for-byte: the seven canonical synthetic points, the adaptive
//!    ADTS point, and both trace-replay points. These tests never bless;
//!    the scalar suites (`golden_trace.rs`, `golden_trace_replay.rs`)
//!    own the fixtures, and a divergence here means the multi-core
//!    machinery perturbed the single-core model.
//! 2. **Allocation points** — 2-core runs whose placement is re-decided
//!    every quantum by an allocation policy, with a nonzero migration
//!    penalty, pinned in their own fixtures (blessed here via the usual
//!    `SMT_GOLDEN_BLESS=1` flow). A batched-vs-scalar agreement test
//!    extends the lockstep conformance story to multi-core cells.

#[path = "golden_common/mod.rs"]
mod golden_common;

use golden_common::{
    adaptive_fixture_path, bless_requested, canonical_points, compare_adaptive, compare_multi,
    compare_traces, fixture_path, mix_for, multicore_allocs, multicore_fixture_path,
    multicore_points, trace_capture_path, trace_fixture_path, trace_points, AdaptiveGolden,
    AllocTrace, GoldenTrace, MultiGolden, PolicyTrace, MC_MIGRATION_PENALTY, QUANTA,
    QUANTUM_CYCLES, SCHEMA, SEED, TRACE_QUANTA, TRACE_QUANTUM_CYCLES, TRACE_WARMUP_QUANTA,
};
use smt_adts::prelude::*;
use smt_bench::tracebench::trace_machine;
use smt_isa::tracefile::TraceFile;
use smt_sim::{MachineBatch, MultiCoreMachine};

// ---------------------------------------------------------------------------
// half 1: N=1 replays of every committed fixture
// ---------------------------------------------------------------------------

/// The capture protocol of `golden_trace.rs`, driven through a 1-core
/// `MultiCoreMachine` instead of the bare `SmtMachine`.
fn record_single(mix_id: usize, threads: usize) -> GoldenTrace {
    let mix = mix_for(mix_id, threads);
    GoldenTrace {
        schema: SCHEMA,
        mix: mix.name.clone(),
        threads,
        seed: SEED,
        quanta: QUANTA,
        quantum_cycles: QUANTUM_CYCLES,
        policies: FetchPolicy::ALL
            .iter()
            .map(|&policy| {
                let mut machine = MultiCoreMachine::single(adts::machine_for_mix(&mix, SEED));
                let series =
                    adts::run_fixed_multicore(policy, &mut machine, QUANTA, QUANTUM_CYCLES);
                machine.check_invariants();
                PolicyTrace {
                    policy: policy.name().to_string(),
                    quantum_cycles: series.quanta.iter().map(|q| q.cycles).collect(),
                    quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
                    quantum_ipc_milli: series
                        .quanta
                        .iter()
                        .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
                        .collect(),
                    final_counters: machine.counter_snapshot(),
                }
            })
            .collect(),
    }
}

/// Replay-only byte comparison against a fixture another suite owns.
fn check_replay(
    json_path: std::path::PathBuf,
    fresh_json: String,
    semantic: impl Fn(&str) -> String,
) {
    if bless_requested() {
        return; // fixtures are owned (and mid-regeneration) elsewhere
    }
    let committed = std::fs::read_to_string(&json_path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); bless the owning suite first",
            json_path.display()
        )
    });
    if fresh_json != committed {
        panic!(
            "N=1 MultiCoreMachine diverged from {}: {}",
            json_path.display(),
            semantic(&committed)
        );
    }
}

fn check_single_point(mix_id: usize, threads: usize) {
    let trace = record_single(mix_id, threads);
    check_replay(
        fixture_path(mix_id, threads),
        serde::json::to_string(&trace),
        |committed| {
            let old: GoldenTrace = serde::json::from_str(committed).expect("parse fixture");
            compare_traces(&old, &trace).expect_err("bytes differ, structs must too")
        },
    );
}

#[test]
fn n1_replays_mix01_t8() {
    check_single_point(1, 8);
}

#[test]
fn n1_replays_mix09_t8() {
    check_single_point(9, 8);
}

#[test]
fn n1_replays_mix13_t8() {
    check_single_point(13, 8);
}

#[test]
fn n1_replays_reduced_points() {
    for (mix_id, threads) in canonical_points() {
        if threads < 8 {
            check_single_point(mix_id, threads);
        }
    }
}

/// The ADTS adaptive point: one `AdaptiveScheduler` per core (here: one),
/// stepped through the lockstep multi-core executor.
#[test]
fn n1_replays_adaptive_point() {
    let mix = mix_for(1, 8);
    let mut machine = MultiCoreMachine::single(adts::machine_for_mix(&mix, SEED));
    let cfg = adts::AdtsConfig {
        quantum_cycles: QUANTUM_CYCLES,
        ipc_threshold: 8.0,
        ..adts::AdtsConfig::default()
    };
    let mut scheds = adts::run_adaptive_multicore(cfg, &mut machine, QUANTA);
    machine.check_invariants();
    let final_counters = machine.counter_snapshot();
    let (series, audit) = scheds.remove(0).into_recordings();
    let golden = AdaptiveGolden {
        schema: SCHEMA,
        mix: mix.name.clone(),
        threads: 8,
        seed: SEED,
        quanta: QUANTA,
        quantum_cycles: QUANTUM_CYCLES,
        ipc_threshold_milli: (cfg.ipc_threshold * 1000.0) as u64,
        heuristic: cfg.heuristic.name().to_string(),
        quantum_policy: series.quanta.iter().map(|q| q.policy.clone()).collect(),
        quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
        quantum_ipc_milli: series
            .quanta
            .iter()
            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
            .collect(),
        switch_quantum: series.switches.iter().map(|s| s.quantum).collect(),
        switch_from: series.switches.iter().map(|s| s.from.clone()).collect(),
        switch_to: series.switches.iter().map(|s| s.to.clone()).collect(),
        final_counters,
    };
    let audit: Vec<adts::DecisionRecord> = audit.iter().cloned().collect();
    check_replay(
        adaptive_fixture_path(),
        serde::json::to_string(&golden),
        |committed| {
            let old: AdaptiveGolden = serde::json::from_str(committed).expect("parse fixture");
            compare_adaptive(&old, &golden, &audit).expect_err("bytes differ, structs must too")
        },
    );
}

/// Both trace-replay points: the committed `.smttrace` capture drives a
/// 1-core multi-core machine under the exact replay protocol.
#[test]
fn n1_replays_trace_points() {
    if bless_requested() {
        return;
    }
    for (mix_id, threads) in trace_points() {
        let capture = trace_capture_path(mix_id, threads);
        let bytes = std::fs::read(&capture)
            .unwrap_or_else(|e| panic!("missing trace capture {} ({e})", capture.display()));
        let file = TraceFile::parse(bytes)
            .unwrap_or_else(|e| panic!("committed trace {} corrupt: {e}", capture.display()));
        let mix = mix_for(mix_id, threads);
        let trace = GoldenTrace {
            schema: SCHEMA,
            mix: mix.name.clone(),
            threads,
            seed: SEED,
            quanta: TRACE_QUANTA,
            quantum_cycles: TRACE_QUANTUM_CYCLES,
            policies: FetchPolicy::ALL
                .iter()
                .map(|&policy| {
                    let core = trace_machine(&file).expect("replay machine from committed trace");
                    let mut machine = MultiCoreMachine::single(core);
                    adts::run_fixed_multicore(
                        FetchPolicy::Icount,
                        &mut machine,
                        TRACE_WARMUP_QUANTA,
                        TRACE_QUANTUM_CYCLES,
                    );
                    let series = adts::run_fixed_multicore(
                        policy,
                        &mut machine,
                        TRACE_QUANTA,
                        TRACE_QUANTUM_CYCLES,
                    );
                    machine.check_invariants();
                    PolicyTrace {
                        policy: policy.name().to_string(),
                        quantum_cycles: series.quanta.iter().map(|q| q.cycles).collect(),
                        quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
                        quantum_ipc_milli: series
                            .quanta
                            .iter()
                            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
                            .collect(),
                        final_counters: machine.counter_snapshot(),
                    }
                })
                .collect(),
        };
        check_replay(
            trace_fixture_path(mix_id, threads),
            serde::json::to_string(&trace),
            |committed| {
                let old: GoldenTrace = serde::json::from_str(committed).expect("parse fixture");
                compare_traces(&old, &trace).expect_err("bytes differ, structs must too")
            },
        );
    }
}

// ---------------------------------------------------------------------------
// half 2: genuinely multi-core allocation points (owned here)
// ---------------------------------------------------------------------------

fn record_multicore(mix_id: usize, threads: usize, cores: usize) -> MultiGolden {
    let mix = mix_for(mix_id, threads);
    MultiGolden {
        schema: SCHEMA,
        mix: mix.name.clone(),
        threads,
        cores,
        seed: SEED,
        quanta: QUANTA,
        quantum_cycles: QUANTUM_CYCLES,
        migration_penalty: MC_MIGRATION_PENALTY,
        allocs: multicore_allocs()
            .into_iter()
            .map(|alloc_name| {
                let alloc = AllocKind::by_name(alloc_name).expect("known alloc policy");
                let mut machine = adts::multicore_for_mix(&mix, SEED, cores, MC_MIGRATION_PENALTY);
                let series = adts::run_alloc(
                    FetchPolicy::Icount,
                    alloc,
                    &mut machine,
                    QUANTA,
                    QUANTUM_CYCLES,
                );
                machine.check_invariants();
                AllocTrace {
                    alloc: alloc_name.to_string(),
                    fetch: FetchPolicy::Icount.name().to_string(),
                    quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
                    quantum_ipc_milli: series
                        .quanta
                        .iter()
                        .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
                        .collect(),
                    migrations: machine.migrations().to_vec(),
                    final_counters: machine.counter_snapshot(),
                }
            })
            .collect(),
    }
}

fn check_multicore_point(mix_id: usize, threads: usize, cores: usize) {
    let json_path = multicore_fixture_path(mix_id, threads, cores);
    let golden = record_multicore(mix_id, threads, cores);
    let fresh = serde::json::to_string(&golden);
    if bless_requested() {
        std::fs::create_dir_all(json_path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&json_path, &fresh).expect("write fixture");
        eprintln!("blessed {}", json_path.display());
        return;
    }
    let committed = std::fs::read_to_string(&json_path).unwrap_or_else(|e| {
        panic!(
            "missing multi-core golden fixture {} ({e}); generate with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_multicore",
            json_path.display()
        )
    });
    if fresh == committed {
        return;
    }
    let old: MultiGolden = serde::json::from_str(&committed).expect("parse committed fixture");
    match compare_multi(&old, &golden) {
        Err(msg) => panic!(
            "multi-core golden fixture {}: {msg}\n\
             if this change is intended, re-bless with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_multicore",
            json_path.display()
        ),
        Ok(()) => panic!(
            "multi-core golden fixture {} is semantically equal but not byte-identical",
            json_path.display()
        ),
    }
}

#[test]
fn golden_mc2_mix01_t2() {
    let (mix_id, threads, cores) = multicore_points()[0];
    check_multicore_point(mix_id, threads, cores);
}

#[test]
fn golden_mc2_mix05_t4() {
    let (mix_id, threads, cores) = multicore_points()[1];
    check_multicore_point(mix_id, threads, cores);
}

#[test]
fn multicore_fixture_set_is_complete() {
    if bless_requested() {
        return;
    }
    for (mix_id, threads, cores) in multicore_points() {
        let path = multicore_fixture_path(mix_id, threads, cores);
        assert!(
            path.exists(),
            "multi-core fixture {} missing; bless it first",
            path.display()
        );
    }
}

/// Lockstep conformance for multi-core cells: a `MachineBatch` over the
/// full fetch × allocation matrix must reproduce the scalar [`run_alloc`]
/// series of every point exactly, while actually sharing work.
#[test]
fn multicore_batch_matches_scalar() {
    let (mix_id, threads, cores) = multicore_points()[0];
    let mix = mix_for(mix_id, threads);
    let quanta = 6u64;
    let quantum_cycles = 1024u64;
    let fetches = [FetchPolicy::Icount, FetchPolicy::RoundRobin];

    let warm = adts::multicore_for_mix(&mix, SEED, cores, MC_MIGRATION_PENALTY);
    let cells: Vec<AllocCell> = fetches
        .iter()
        .flat_map(|&f| AllocKind::ALL.into_iter().map(move |a| (f, a)))
        .map(|(f, a)| AllocCell::new(f, a, quantum_cycles, &warm))
        .collect();
    let mut batch = MachineBatch::new(warm.clone(), cells);
    for _ in 0..quanta {
        batch.run_quantum();
    }
    let stats = batch.stats();
    assert!(
        stats.machine_quanta < stats.cell_quanta,
        "batch shared no work: {stats:?}"
    );
    let batched = batch.into_cells();

    for cell in batched {
        let (f, a) = (cell.fetch_policy(), cell.alloc_kind());
        let mut machine = warm.clone();
        let scalar = adts::run_alloc(f, a, &mut machine, quanta, quantum_cycles);
        assert_eq!(
            cell.into_series(),
            scalar,
            "batched {}+{} diverged from scalar",
            f.name(),
            a.name()
        );
    }
}
