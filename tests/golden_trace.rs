//! Golden-trace conformance suite.
//!
//! Pins the machine's *exact* observable behavior: each canonical mix runs
//! 16 quanta under every fetch policy of Table 1, and the resulting
//! per-quantum (cycles, committed, milli-IPC) series plus the final
//! [`CounterSnapshot`] must replay **byte-identically** against the
//! checked-in fixtures under `tests/golden/`.
//!
//! These fixtures were generated *before* the hot-path rewrite of
//! `SmtMachine` (indexed queues, zero-allocation snapshots, trace-off fast
//! path) and gate it: an optimization that changes any counter by one is a
//! semantic change and fails here.
//!
//! Refreshing fixtures (only when a semantic change is *intended*):
//!
//! ```text
//! SMT_GOLDEN_BLESS=1 cargo test --test golden_trace
//! git diff tests/golden/   # review every changed number deliberately
//! ```
//!
//! The comparison is on the serialized canonical-JSON bytes, not on parsed
//! values, so formatting drift in the serializer is caught too (the sweep
//! cache's content addressing depends on the same byte stability).

use serde::{Deserialize, Serialize};
use smt_adts::prelude::*;
use smt_sim::CounterSnapshot;
use std::path::PathBuf;

const QUANTA: u64 = 16;
const QUANTUM_CYCLES: u64 = 4096;
const SEED: u64 = 42;
/// Bump only alongside an intended fixture refresh.
const SCHEMA: u32 = 1;

/// One policy's pinned observables for a mix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct PolicyTrace {
    policy: String,
    /// Per-quantum cycle counts (constant here, but pinned anyway).
    quantum_cycles: Vec<u64>,
    /// Per-quantum committed micro-ops.
    quantum_committed: Vec<u64>,
    /// Per-quantum IPC in milli-instructions-per-cycle (integer so the
    /// fixture is exact regardless of float formatting).
    quantum_ipc_milli: Vec<u64>,
    /// Every thread's full counter state after the last quantum.
    final_counters: CounterSnapshot,
}

/// The whole fixture for one (mix, thread-count) point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct GoldenTrace {
    schema: u32,
    mix: String,
    threads: usize,
    seed: u64,
    quanta: u64,
    quantum_cycles: u64,
    policies: Vec<PolicyTrace>,
}

/// The canonical points: the three paper-representative 8-thread mixes
/// (baseline MIX01, the §1 motivating MIX09, homogeneous MIX13), the
/// 4- and 2-thread reductions of MIX01 used by the perf baseline, and two
/// cross-checks off the MIX01 axis (memory-heavy MIX05 at 4 threads,
/// MIX09 at 2) so reduced-thread behavior is pinned on more than one mix.
fn canonical_points() -> Vec<(usize, usize)> {
    vec![(1, 8), (9, 8), (13, 8), (1, 4), (1, 2), (5, 4), (9, 2)]
}

fn mix_for(id: usize, threads: usize) -> Mix {
    let m = workloads::mix(id);
    if threads == m.apps.len() {
        m
    } else {
        m.take_threads(threads, 7)
    }
}

fn record_trace(mix_id: usize, threads: usize) -> GoldenTrace {
    record_trace_with(mix_id, threads, false)
}

/// Record one point, optionally with full event tracing enabled: the
/// traced replay must produce byte-identical observables (the trace layer
/// is pure instrumentation).
fn record_trace_with(mix_id: usize, threads: usize, traced: bool) -> GoldenTrace {
    let mix = mix_for(mix_id, threads);
    let mut policies = Vec::new();
    for policy in FetchPolicy::ALL {
        let mut machine = adts::machine_for_mix(&mix, SEED);
        if traced {
            machine.enable_trace(8192);
        }
        let series = adts::run_fixed(policy, &mut machine, QUANTA, QUANTUM_CYCLES);
        machine.check_invariants();
        if traced {
            let buf = machine.disable_trace().expect("trace stayed enabled");
            assert!(buf.recorded > 0, "traced run must actually record events");
        }
        let quantum_cycles: Vec<u64> = series.quanta.iter().map(|q| q.cycles).collect();
        let quantum_committed: Vec<u64> = series.quanta.iter().map(|q| q.committed).collect();
        let quantum_ipc_milli: Vec<u64> = series
            .quanta
            .iter()
            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
            .collect();
        policies.push(PolicyTrace {
            policy: policy.name().to_string(),
            quantum_cycles,
            quantum_committed,
            quantum_ipc_milli,
            final_counters: machine.counter_snapshot(),
        });
    }
    GoldenTrace {
        schema: SCHEMA,
        mix: mix.name.clone(),
        threads,
        seed: SEED,
        quanta: QUANTA,
        quantum_cycles: QUANTUM_CYCLES,
        policies,
    }
}

fn fixture_path(mix_id: usize, threads: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("mix{mix_id:02}_t{threads}.json"))
}

fn bless_requested() -> bool {
    std::env::var("SMT_GOLDEN_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Locate the first differing quantum in a pinned per-quantum series.
fn first_vec_diff(
    what: &str,
    old: &[u64],
    new: &[u64],
    policy: &str,
    trace: &GoldenTrace,
) -> Option<String> {
    if old == new {
        return None;
    }
    let at = format!("for {} on {} (t{})", policy, trace.mix, trace.threads);
    Some(match old.iter().zip(new).position(|(a, b)| a != b) {
        Some(i) => format!(
            "{what} diverged {at}: quantum {i}: fixture {} vs fresh {}",
            old[i], new[i]
        ),
        None => format!(
            "{what} diverged {at}: length {} vs {}",
            old.len(),
            new.len()
        ),
    })
}

/// Semantic comparison of committed fixture vs fresh recording, naming the
/// first divergence so the failure report is actionable. `Ok(())` iff the
/// decoded structures are equal.
fn compare_traces(old: &GoldenTrace, new: &GoldenTrace) -> Result<(), String> {
    if old == new {
        return Ok(());
    }
    for (op, np) in old.policies.iter().zip(&new.policies) {
        if let Some(msg) = first_vec_diff(
            "per-quantum IPC",
            &op.quantum_ipc_milli,
            &np.quantum_ipc_milli,
            &np.policy,
            new,
        ) {
            return Err(msg);
        }
        if let Some(msg) = first_vec_diff(
            "per-quantum commits",
            &op.quantum_committed,
            &np.quantum_committed,
            &np.policy,
            new,
        ) {
            return Err(msg);
        }
        if op.final_counters != np.final_counters {
            return Err(format!(
                "final counters diverged for {} on {} (t{})",
                np.policy, new.mix, new.threads
            ));
        }
    }
    Err(format!(
        "golden trace structure diverged for {} (t{})",
        new.mix, new.threads
    ))
}

fn check_point(mix_id: usize, threads: usize) {
    let path = fixture_path(mix_id, threads);
    let trace = record_trace(mix_id, threads);
    let fresh = serde::json::to_string(&trace);
    if bless_requested() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &fresh).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        )
    });
    if fresh == committed {
        return;
    }
    // Bytes differ: decode both to point at the first semantic divergence
    // before failing, so the report is actionable.
    let old: GoldenTrace = serde::json::from_str(&committed).expect("parse committed fixture");
    match compare_traces(&old, &trace) {
        Err(msg) => panic!(
            "golden fixture {}: {msg}\n\
             if this change is intended, re-bless with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        ),
        Ok(()) => panic!(
            "golden fixture {} is semantically equal but not byte-identical; \
             the JSON serializer lost canonical formatting",
            path.display()
        ),
    }
}

#[test]
fn golden_mix01_t8() {
    check_point(1, 8);
}

#[test]
fn golden_mix09_t8() {
    check_point(9, 8);
}

#[test]
fn golden_mix13_t8() {
    check_point(13, 8);
}

#[test]
fn golden_mix01_t4() {
    check_point(1, 4);
}

#[test]
fn golden_mix01_t2() {
    check_point(1, 2);
}

#[test]
fn golden_mix05_t4() {
    check_point(5, 4);
}

#[test]
fn golden_mix09_t2() {
    check_point(9, 2);
}

/// The zero-overhead claim, stated as conformance: replaying a canonical
/// point with the event ring enabled must reproduce the *untraced*
/// fixture byte-for-byte.
#[test]
fn golden_mix01_t8_traced_replay() {
    if bless_requested() {
        return; // the untraced run owns fixture generation
    }
    let path = fixture_path(1, 8);
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e})", path.display()));
    let fresh = serde::json::to_string(&record_trace_with(1, 8, true));
    assert_eq!(
        fresh, committed,
        "event tracing changed pinned observables on MIX01 (t8)"
    );
}

/// The failure path itself is part of the contract: a perturbed fixture
/// must be rejected with a message naming the policy, point and quantum.
#[test]
fn perturbed_fixture_fails_with_readable_diff() {
    let path = fixture_path(1, 8);
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e})", path.display()));
    let good: GoldenTrace = serde::json::from_str(&committed).expect("parse fixture");
    let mut bad = good.clone();
    bad.policies[0].quantum_committed[3] += 1;
    bad.policies[0].quantum_ipc_milli[3] += 1;
    let msg = compare_traces(&bad, &good).expect_err("perturbation must be detected");
    assert!(msg.contains("per-quantum IPC diverged"), "{msg}");
    assert!(msg.contains("quantum 3"), "{msg}");
    assert!(
        msg.contains(&good.policies[0].policy) && msg.contains("MIX01"),
        "{msg}"
    );
}

/// The canonical point list, the fixture directory and the test functions
/// must stay in sync; this meta-test catches a forgotten fixture.
#[test]
fn golden_fixture_set_is_complete() {
    if bless_requested() {
        return; // blessing runs may be mid-generation
    }
    for (mix_id, threads) in canonical_points() {
        let path = fixture_path(mix_id, threads);
        assert!(
            path.exists(),
            "golden fixture {} missing; bless it first",
            path.display()
        );
    }
}
