//! Golden-trace conformance suite.
//!
//! Pins the machine's *exact* observable behavior: each canonical mix runs
//! 16 quanta under every fetch policy of Table 1, and the resulting
//! per-quantum (cycles, committed, milli-IPC) series plus the final
//! [`CounterSnapshot`] must replay **byte-identically** against the
//! checked-in fixtures under `tests/golden/`.
//!
//! These fixtures were generated *before* the hot-path rewrite of
//! `SmtMachine` (indexed queues, zero-allocation snapshots, trace-off fast
//! path) and gate it: an optimization that changes any counter by one is a
//! semantic change and fails here.
//!
//! Refreshing fixtures (only when a semantic change is *intended*):
//!
//! ```text
//! SMT_GOLDEN_BLESS=1 cargo test --test golden_trace
//! git diff tests/golden/   # review every changed number deliberately
//! ```
//!
//! The comparison is on the serialized canonical-JSON bytes, not on parsed
//! values, so formatting drift in the serializer is caught too (the sweep
//! cache's content addressing depends on the same byte stability).

#[path = "golden_common/mod.rs"]
mod golden_common;

use golden_common::{
    adaptive_fixture_path, bless_requested, canonical_points, compare_adaptive, compare_traces,
    fixture_path, mix_for, AdaptiveGolden, GoldenTrace, PolicyTrace, QUANTA, QUANTUM_CYCLES,
    SCHEMA, SEED,
};
use smt_adts::prelude::*;

fn record_trace(mix_id: usize, threads: usize) -> GoldenTrace {
    record_trace_with(mix_id, threads, false)
}

/// Record one point, optionally with full event tracing enabled: the
/// traced replay must produce byte-identical observables (the trace layer
/// is pure instrumentation).
fn record_trace_with(mix_id: usize, threads: usize, traced: bool) -> GoldenTrace {
    let mix = mix_for(mix_id, threads);
    let mut policies = Vec::new();
    for policy in FetchPolicy::ALL {
        let mut machine = adts::machine_for_mix(&mix, SEED);
        if traced {
            machine.enable_trace(8192);
        }
        let series = adts::run_fixed(policy, &mut machine, QUANTA, QUANTUM_CYCLES);
        machine.check_invariants();
        if traced {
            let buf = machine.disable_trace().expect("trace stayed enabled");
            assert!(buf.recorded > 0, "traced run must actually record events");
        }
        let quantum_cycles: Vec<u64> = series.quanta.iter().map(|q| q.cycles).collect();
        let quantum_committed: Vec<u64> = series.quanta.iter().map(|q| q.committed).collect();
        let quantum_ipc_milli: Vec<u64> = series
            .quanta
            .iter()
            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
            .collect();
        policies.push(PolicyTrace {
            policy: policy.name().to_string(),
            quantum_cycles,
            quantum_committed,
            quantum_ipc_milli,
            final_counters: machine.counter_snapshot(),
        });
    }
    GoldenTrace {
        schema: SCHEMA,
        mix: mix.name.clone(),
        threads,
        seed: SEED,
        quanta: QUANTA,
        quantum_cycles: QUANTUM_CYCLES,
        policies,
    }
}

fn check_point(mix_id: usize, threads: usize) {
    let path = fixture_path(mix_id, threads);
    let trace = record_trace(mix_id, threads);
    let fresh = serde::json::to_string(&trace);
    if bless_requested() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &fresh).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        )
    });
    if fresh == committed {
        return;
    }
    // Bytes differ: decode both to point at the first semantic divergence
    // before failing, so the report is actionable.
    let old: GoldenTrace = serde::json::from_str(&committed).expect("parse committed fixture");
    match compare_traces(&old, &trace) {
        Err(msg) => panic!(
            "golden fixture {}: {msg}\n\
             if this change is intended, re-bless with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        ),
        Ok(()) => panic!(
            "golden fixture {} is semantically equal but not byte-identical; \
             the JSON serializer lost canonical formatting",
            path.display()
        ),
    }
}

#[test]
fn golden_mix01_t8() {
    check_point(1, 8);
}

#[test]
fn golden_mix09_t8() {
    check_point(9, 8);
}

#[test]
fn golden_mix13_t8() {
    check_point(13, 8);
}

#[test]
fn golden_mix01_t4() {
    check_point(1, 4);
}

#[test]
fn golden_mix01_t2() {
    check_point(1, 2);
}

#[test]
fn golden_mix05_t4() {
    check_point(5, 4);
}

#[test]
fn golden_mix09_t2() {
    check_point(9, 2);
}

/// The zero-overhead claim, stated as conformance: replaying a canonical
/// point with the event ring enabled must reproduce the *untraced*
/// fixture byte-for-byte.
#[test]
fn golden_mix01_t8_traced_replay() {
    if bless_requested() {
        return; // the untraced run owns fixture generation
    }
    let path = fixture_path(1, 8);
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e})", path.display()));
    let fresh = serde::json::to_string(&record_trace_with(1, 8, true));
    assert_eq!(
        fresh, committed,
        "event tracing changed pinned observables on MIX01 (t8)"
    );
}

/// The failure path itself is part of the contract: a perturbed fixture
/// must be rejected with a message naming the policy, point and quantum.
#[test]
fn perturbed_fixture_fails_with_readable_diff() {
    let path = fixture_path(1, 8);
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e})", path.display()));
    let good: GoldenTrace = serde::json::from_str(&committed).expect("parse fixture");
    let mut bad = good.clone();
    bad.policies[0].quantum_committed[3] += 1;
    bad.policies[0].quantum_ipc_milli[3] += 1;
    let msg = compare_traces(&bad, &good).expect_err("perturbation must be detected");
    assert!(msg.contains("per-quantum IPC diverged"), "{msg}");
    assert!(msg.contains("quantum 3"), "{msg}");
    assert!(
        msg.contains(&good.policies[0].policy) && msg.contains("MIX01"),
        "{msg}"
    );
}

/// The canonical point list, the fixture directory and the test functions
/// must stay in sync; this meta-test catches a forgotten fixture.
#[test]
fn golden_fixture_set_is_complete() {
    if bless_requested() {
        return; // blessing runs may be mid-generation
    }
    for (mix_id, threads) in canonical_points() {
        let path = fixture_path(mix_id, threads);
        assert!(
            path.exists(),
            "golden fixture {} missing; bless it first",
            path.display()
        );
    }
    assert!(
        adaptive_fixture_path().exists(),
        "adaptive golden fixture missing; bless it first"
    );
}

// ---------------------------------------------------------------------------
// Adaptive (ADTS) golden point.
//
// The fixed-policy fixtures above cannot catch a regression in the
// scheduler's decision loop, so one adaptive point is pinned too: MIX01
// (t8) under Type 3 with an unattainable threshold (m = 8), which forces
// the heuristic to run at every quantum boundary. When this point
// diverges, the failure message includes the fresh run's decision-audit
// record for the first divergent quantum — the explain layer applied to
// conformance debugging.
// ---------------------------------------------------------------------------

fn record_adaptive() -> (AdaptiveGolden, Vec<adts::DecisionRecord>) {
    let mix = mix_for(1, 8);
    let mut machine = adts::machine_for_mix(&mix, SEED);
    let cfg = adts::AdtsConfig {
        quantum_cycles: QUANTUM_CYCLES,
        ipc_threshold: 8.0,
        ..adts::AdtsConfig::default()
    };
    let mut sched = adts::AdaptiveScheduler::new(cfg, machine.n_threads());
    for _ in 0..QUANTA {
        sched.run_quantum(&mut machine);
    }
    machine.check_invariants();
    let final_counters = machine.counter_snapshot();
    let (series, audit) = sched.into_recordings();
    let golden = AdaptiveGolden {
        schema: SCHEMA,
        mix: mix.name.clone(),
        threads: 8,
        seed: SEED,
        quanta: QUANTA,
        quantum_cycles: QUANTUM_CYCLES,
        ipc_threshold_milli: (cfg.ipc_threshold * 1000.0) as u64,
        heuristic: cfg.heuristic.name().to_string(),
        quantum_policy: series.quanta.iter().map(|q| q.policy.clone()).collect(),
        quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
        quantum_ipc_milli: series
            .quanta
            .iter()
            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
            .collect(),
        switch_quantum: series.switches.iter().map(|s| s.quantum).collect(),
        switch_from: series.switches.iter().map(|s| s.from.clone()).collect(),
        switch_to: series.switches.iter().map(|s| s.to.clone()).collect(),
        final_counters,
    };
    (golden, audit.iter().cloned().collect())
}

#[test]
fn golden_mix01_t8_adaptive() {
    let path = adaptive_fixture_path();
    let (golden, audit) = record_adaptive();
    let fresh = serde::json::to_string(&golden);
    if bless_requested() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &fresh).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing adaptive golden fixture {} ({e}); generate with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        )
    });
    if fresh == committed {
        return;
    }
    let old: AdaptiveGolden = serde::json::from_str(&committed).expect("parse committed fixture");
    match compare_adaptive(&old, &golden, &audit) {
        Err(msg) => panic!(
            "adaptive golden fixture {}: {msg}\n\
             if this change is intended, re-bless with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        ),
        Ok(()) => panic!(
            "adaptive golden fixture {} is semantically equal but not \
             byte-identical; the JSON serializer lost canonical formatting",
            path.display()
        ),
    }
}

/// The adaptive run must switch at least once at m = 8 (otherwise the
/// point pins nothing about the decision loop) and every recorded switch
/// must be explained by a `switched` decision record.
#[test]
fn adaptive_golden_point_exercises_the_decision_loop() {
    let (golden, audit) = record_adaptive();
    assert!(
        !golden.switch_quantum.is_empty(),
        "m=8 must force switches on MIX01"
    );
    assert_eq!(audit.len(), QUANTA as usize);
    for (i, q) in golden.switch_quantum.iter().enumerate() {
        let rec = &audit[*q as usize];
        assert!(rec.switched, "switch at quantum {q} must be audited");
        assert_eq!(rec.incumbent.name(), golden.switch_from[i]);
        assert_eq!(rec.chosen.name(), golden.switch_to[i]);
        assert!(!rec.reason.name().is_empty());
    }
}

/// The adaptive differ's failure path: a perturbed fixture must be
/// rejected with a message that carries the decision audit of the first
/// divergent quantum.
#[test]
fn perturbed_adaptive_fixture_prints_decision_audit() {
    let (good, audit) = record_adaptive();
    let mut bad = good.clone();
    bad.quantum_committed[3] += 1;
    bad.quantum_ipc_milli[3] = bad.quantum_committed[3].saturating_mul(1000) / QUANTUM_CYCLES;
    let msg = compare_adaptive(&bad, &good, &audit).expect_err("perturbation must be detected");
    assert!(msg.contains("quantum 3"), "{msg}");
    assert!(
        msg.contains("decision audit"),
        "differ must attach the decision record: {msg}"
    );
    assert!(
        msg.contains(r#""reason":"#),
        "decision record JSON must be embedded: {msg}"
    );
}
