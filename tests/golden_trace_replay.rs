//! Trace-backed golden conformance suite.
//!
//! Every point here replays a **committed binary capture file** from
//! `traces/` under the full fixed-policy matrix and pins the resulting
//! per-quantum observables with the same [`GoldenTrace`] schema, fixture
//! bytes and semantic differ as the synthetic suite (`golden_trace.rs`).
//! Both trace points are also pinned synthetically, so a divergence here
//! with a clean `golden_trace` run isolates the trace codec/replay path
//! rather than the machine model.
//!
//! The replay protocol mirrors the capture protocol exactly: one quantum
//! of fixed-ICOUNT warmup (excluded from the recorded series, included in
//! the pinned final counters) followed by `TRACE_QUANTA` measured quanta
//! per policy — so the replay stays strictly inside the captured op span
//! and never exercises the cyclic-wrap fallback.
//!
//! Refreshing (regenerates both the `.smttrace` capture and the JSON):
//!
//! ```text
//! SMT_GOLDEN_BLESS=1 cargo test --test golden_trace_replay
//! git diff traces/ tests/golden/   # review deliberately
//! ```

#[path = "golden_common/mod.rs"]
mod golden_common;

use golden_common::{
    bless_requested, compare_traces, mix_for, trace_capture_path, trace_fixture_path, trace_points,
    GoldenTrace, PolicyTrace, SCHEMA, SEED, TRACE_QUANTA, TRACE_QUANTUM_CYCLES,
    TRACE_WARMUP_QUANTA,
};
use smt_adts::prelude::*;
use smt_bench::tracebench::{capture_mix_trace, trace_machine};
use smt_bench::ExpParams;
use smt_isa::tracefile::TraceFile;
use smt_sim::SmtMachine;

fn trace_params(mix_id: usize) -> ExpParams {
    ExpParams {
        seed: SEED,
        warmup_quanta: TRACE_WARMUP_QUANTA,
        quanta: TRACE_QUANTA,
        quantum_cycles: TRACE_QUANTUM_CYCLES,
        mix_ids: vec![mix_id],
    }
}

/// Run the capture protocol's measured window on `machine` and pin it.
fn record_policy(policy: FetchPolicy, mut machine: SmtMachine) -> PolicyTrace {
    adts::run_fixed(
        FetchPolicy::Icount,
        &mut machine,
        TRACE_WARMUP_QUANTA,
        TRACE_QUANTUM_CYCLES,
    );
    let series = adts::run_fixed(policy, &mut machine, TRACE_QUANTA, TRACE_QUANTUM_CYCLES);
    machine.check_invariants();
    PolicyTrace {
        policy: policy.name().to_string(),
        quantum_cycles: series.quanta.iter().map(|q| q.cycles).collect(),
        quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
        quantum_ipc_milli: series
            .quanta
            .iter()
            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
            .collect(),
        final_counters: machine.counter_snapshot(),
    }
}

fn golden_over(mix_id: usize, threads: usize, machine_for: impl Fn() -> SmtMachine) -> GoldenTrace {
    let mix = mix_for(mix_id, threads);
    GoldenTrace {
        schema: SCHEMA,
        mix: mix.name.clone(),
        threads,
        seed: SEED,
        quanta: TRACE_QUANTA,
        quantum_cycles: TRACE_QUANTUM_CYCLES,
        policies: FetchPolicy::ALL
            .iter()
            .map(|&p| record_policy(p, machine_for()))
            .collect(),
    }
}

fn load_capture(mix_id: usize, threads: usize) -> TraceFile {
    let path = trace_capture_path(mix_id, threads);
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing trace capture {} ({e}); generate with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace_replay",
            path.display()
        )
    });
    TraceFile::parse(bytes)
        .unwrap_or_else(|e| panic!("committed trace {} is corrupt: {e}", path.display()))
}

fn record_replay(mix_id: usize, threads: usize) -> GoldenTrace {
    let file = load_capture(mix_id, threads);
    golden_over(mix_id, threads, || {
        trace_machine(&file).expect("replay machine from committed trace")
    })
}

fn check_point(mix_id: usize, threads: usize) {
    let json_path = trace_fixture_path(mix_id, threads);
    if bless_requested() {
        let capture_path = trace_capture_path(mix_id, threads);
        let bytes = capture_mix_trace(&mix_for(mix_id, threads), &trace_params(mix_id));
        std::fs::create_dir_all(capture_path.parent().unwrap()).expect("create traces/");
        std::fs::write(&capture_path, &bytes).expect("write trace capture");
        eprintln!("blessed {} ({} bytes)", capture_path.display(), bytes.len());
    }
    let trace = record_replay(mix_id, threads);
    let fresh = serde::json::to_string(&trace);
    if bless_requested() {
        std::fs::create_dir_all(json_path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&json_path, &fresh).expect("write fixture");
        eprintln!("blessed {}", json_path.display());
        return;
    }
    let committed = std::fs::read_to_string(&json_path).unwrap_or_else(|e| {
        panic!(
            "missing trace golden fixture {} ({e}); generate with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace_replay",
            json_path.display()
        )
    });
    if fresh == committed {
        return;
    }
    let old: GoldenTrace = serde::json::from_str(&committed).expect("parse committed fixture");
    match compare_traces(&old, &trace) {
        Err(msg) => panic!(
            "trace golden fixture {}: {msg}\n\
             if this change is intended, re-bless with \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace_replay",
            json_path.display()
        ),
        Ok(()) => panic!(
            "trace golden fixture {} is semantically equal but not byte-identical; \
             the JSON serializer lost canonical formatting",
            json_path.display()
        ),
    }
}

#[test]
fn golden_trace_mix01_t2() {
    check_point(1, 2);
}

#[test]
fn golden_trace_mix05_t4() {
    check_point(5, 4);
}

/// The capture→replay bit-identity contract, stated over the *committed*
/// captures: rebuilding each point from fresh synthetic streams under the
/// identical protocol must produce exactly the observables the trace
/// replay produces — same per-quantum series, same final counters, for
/// every policy in the matrix.
#[test]
fn synth_and_trace_goldens_agree() {
    for (mix_id, threads) in trace_points() {
        let mix = mix_for(mix_id, threads);
        let synth = golden_over(mix_id, threads, || adts::machine_for_mix(&mix, SEED));
        let replay = record_replay(mix_id, threads);
        if synth != replay {
            let msg = compare_traces(&synth, &replay).expect_err("structs differ");
            panic!("trace replay diverged from its synthetic source: {msg}");
        }
    }
}

/// Both halves of every trace point must be committed together.
#[test]
fn trace_fixture_set_is_complete() {
    if bless_requested() {
        return; // blessing runs may be mid-generation
    }
    for (mix_id, threads) in trace_points() {
        for path in [
            trace_capture_path(mix_id, threads),
            trace_fixture_path(mix_id, threads),
        ] {
            assert!(
                path.exists(),
                "trace fixture {} missing; bless it first",
                path.display()
            );
        }
    }
}

/// The committed captures must carry usable metadata: the protocol scale
/// recorded in the header is what fast-forward consumers key on.
#[test]
fn committed_captures_declare_the_protocol() {
    if bless_requested() {
        return;
    }
    for (mix_id, threads) in trace_points() {
        let file = load_capture(mix_id, threads);
        let meta = file.meta();
        assert_eq!(file.n_threads(), threads);
        assert_eq!(meta.seed, SEED);
        assert_eq!(meta.quantum_cycles, TRACE_QUANTUM_CYCLES);
        assert_eq!(
            meta.quantum_marks.len() as u64,
            TRACE_WARMUP_QUANTA + TRACE_QUANTA,
            "one consumption mark per protocol quantum"
        );
        for t in 0..threads {
            assert!(file.thread_ops(t) > 0);
        }
    }
}
