//! Cross-crate tests of the job-scheduler extension: many swaps, machine
//! invariants, and the DT-assistance claim.

use smt_adts::adts::{EvictionPolicy, JobSchedConfig, JobScheduler};
use smt_adts::prelude::*;

fn pool() -> Vec<AppProfile> {
    vec![
        workloads::app("gap"),
        workloads::app("apsi"),
        workloads::app("vortex"),
        workloads::app("mesa"),
    ]
}

fn run(mix_id: usize, eviction: EvictionPolicy, timeslices: u64) -> (f64, usize, SmtMachine) {
    let mix = workloads::mix(mix_id);
    let mut machine = adts::machine_for_mix(&mix, 42);
    let cfg = JobSchedConfig {
        adts: AdtsConfig {
            ipc_threshold: 2.0,
            ..Default::default()
        },
        timeslice_quanta: 5,
        eviction,
        ..Default::default()
    };
    let mut js = JobScheduler::new(cfg, pool());
    let running = mix.apps.iter().map(|a| a.name.clone()).collect();
    let out = js.run(&mut machine, running, timeslices);
    (out.series.aggregate_ipc(), out.swaps.len(), machine)
}

#[test]
fn many_swaps_keep_the_machine_consistent() {
    for mix_id in [1, 6, 9] {
        let (ipc, swaps, machine) = run(mix_id, EvictionPolicy::ClogMarks, 8);
        assert!(ipc > 0.3, "mix {mix_id} collapsed to {ipc}");
        assert_eq!(swaps, 8);
        machine.check_invariants();
    }
}

#[test]
fn swapped_in_jobs_actually_run() {
    let (_, _, machine) = run(6, EvictionPolicy::RoundRobin, 4);
    // After four round-robin swaps, contexts 0..4 run pool jobs.
    let names: Vec<String> = (0..4)
        .map(|t| machine.thread_profile(Tid(t)).name.clone())
        .collect();
    let pool_names = ["gap", "apsi", "vortex", "mesa"];
    for (t, n) in names.iter().enumerate() {
        assert!(
            pool_names.contains(&n.as_str()),
            "context {t} still runs {n}"
        );
    }
}

#[test]
fn assisted_eviction_targets_differ_from_blind_rotation() {
    let mix = workloads::mix(6);
    let mut machine = adts::machine_for_mix(&mix, 42);
    let cfg = JobSchedConfig {
        adts: AdtsConfig {
            ipc_threshold: 8.0,
            ..Default::default()
        },
        timeslice_quanta: 5,
        eviction: EvictionPolicy::ClogMarks,
        ..Default::default()
    };
    let mut js = JobScheduler::new(cfg, pool());
    let running = mix.apps.iter().map(|a| a.name.clone()).collect();
    let out = js.run(&mut machine, running, 4);
    // Blind rotation would evict contexts 0,1,2,3; clog marks must not.
    let victims: Vec<u8> = out.swaps.iter().map(|(_, t, _, _)| t.0).collect();
    assert_ne!(
        victims,
        vec![0, 1, 2, 3],
        "clog marks behaved like rotation"
    );
}

#[test]
fn jobsched_is_deterministic() {
    let a = run(9, EvictionPolicy::ClogMarks, 5);
    let b = run(9, EvictionPolicy::ClogMarks, 5);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
