//! Observability differential suite.
//!
//! The whole value of the obs layer rests on one claim: turning it on does
//! not change what the machine does. These tests run the same points twice
//! — once bare, once with the event ring, per-quantum occupancy sampling
//! and the metrics registry all enabled — and require the pinned
//! observables (per-quantum cycles / commits / milli-IPC and the final
//! [`CounterSnapshot`]) to serialize to byte-identical JSON. They also pin
//! the exporters: for a fully traced run, all three output formats must
//! parse back.

use serde::{Deserialize, Serialize};
use smt_adts::prelude::*;
use smt_sim::obs::{export, MetricsRegistry, PipelineSampler};
use smt_sim::{CounterSnapshot, TraceEvent};

const QUANTA: u64 = 8;
const QUANTUM_CYCLES: u64 = 4096;
const SEED: u64 = 42;
const EVENTS_CAP: usize = 16384;

/// Everything a run pins, in canonical-JSON-comparable form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Observables {
    quantum_cycles: Vec<u64>,
    quantum_committed: Vec<u64>,
    quantum_ipc_milli: Vec<u64>,
    final_counters: CounterSnapshot,
}

fn observables(series: &RunSeries, machine: &SmtMachine) -> Observables {
    Observables {
        quantum_cycles: series.quanta.iter().map(|q| q.cycles).collect(),
        quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
        quantum_ipc_milli: series
            .quanta
            .iter()
            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
            .collect(),
        final_counters: machine.counter_snapshot(),
    }
}

/// Fixed-policy run; when `observed`, with the full instrumentation stack.
fn fixed_run(mix_id: usize, observed: bool) -> (String, Option<smt_sim::TraceBuffer>) {
    let mix = workloads::mix(mix_id);
    let mut machine = adts::machine_for_mix(&mix, SEED);
    let (series, buf) = if observed {
        machine.enable_trace(EVENTS_CAP);
        let mut reg = MetricsRegistry::new();
        let mut sampler = PipelineSampler::new(&mut reg, &machine);
        let series = adts::run_fixed_sampled(
            FetchPolicy::Icount,
            &mut machine,
            QUANTA,
            QUANTUM_CYCLES,
            |_, m, _| sampler.sample(m, &mut reg),
        );
        let buf = machine.disable_trace().expect("trace was enabled");
        (series, Some(buf))
    } else {
        let series = adts::run_fixed(FetchPolicy::Icount, &mut machine, QUANTA, QUANTUM_CYCLES);
        (series, None)
    };
    machine.check_invariants();
    let json = serde::json::to_string(&observables(&series, &machine));
    (json, buf)
}

/// Adaptive (ADTS) run; same contract.
fn adaptive_run(mix_id: usize, observed: bool) -> String {
    let mix = workloads::mix(mix_id);
    let mut machine = adts::machine_for_mix(&mix, SEED);
    let cfg = AdtsConfig {
        quantum_cycles: QUANTUM_CYCLES,
        ..AdtsConfig::default()
    };
    let mut reg = MetricsRegistry::new();
    let mut sampler = if observed {
        machine.enable_trace(EVENTS_CAP);
        Some(PipelineSampler::new(&mut reg, &machine))
    } else {
        None
    };
    let mut sched = AdaptiveScheduler::new(cfg, machine.n_threads());
    for _ in 0..QUANTA {
        sched.run_quantum(&mut machine);
        if let Some(s) = sampler.as_mut() {
            s.sample(&machine, &mut reg);
        }
    }
    let series = sched.into_series();
    machine.check_invariants();
    serde::json::to_string(&observables(&series, &machine))
}

#[test]
fn fixed_mix01_identical_with_obs_on() {
    let (bare, _) = fixed_run(1, false);
    let (observed, buf) = fixed_run(1, true);
    assert_eq!(bare, observed, "obs instrumentation changed MIX01/ICOUNT");
    assert!(buf.unwrap().recorded > 0, "observed run must record events");
}

#[test]
fn fixed_mix09_identical_with_obs_on() {
    let (bare, _) = fixed_run(9, false);
    let (observed, buf) = fixed_run(9, true);
    assert_eq!(bare, observed, "obs instrumentation changed MIX09/ICOUNT");
    assert!(buf.unwrap().recorded > 0, "observed run must record events");
}

#[test]
fn adaptive_mix01_identical_with_obs_on() {
    assert_eq!(
        adaptive_run(1, false),
        adaptive_run(1, true),
        "obs instrumentation changed MIX01/adts"
    );
}

#[test]
fn adaptive_mix09_identical_with_obs_on() {
    assert_eq!(
        adaptive_run(9, false),
        adaptive_run(9, true),
        "obs instrumentation changed MIX09/adts"
    );
}

/// All three exporter formats parse back for a full traced run.
#[test]
fn exporters_parse_for_a_traced_run() {
    let mix = workloads::mix(1);
    let mut machine = adts::machine_for_mix(&mix, SEED);
    machine.enable_trace(EVENTS_CAP);
    let mut reg = MetricsRegistry::new();
    let mut sampler = PipelineSampler::new(&mut reg, &machine);
    let series = adts::run_fixed_sampled(
        FetchPolicy::Icount,
        &mut machine,
        QUANTA,
        QUANTUM_CYCLES,
        |_, m, _| sampler.sample(m, &mut reg),
    );
    adts::register_series_metrics(&mut reg, &series);
    let buf = machine.disable_trace().expect("trace was enabled");
    assert!(!buf.is_empty());

    // JSONL: every line is one event that round-trips.
    let jsonl = export::events_jsonl(buf.events());
    let mut lines = 0;
    for line in jsonl.lines() {
        let _: TraceEvent = serde::json::from_str(line).expect("JSONL line must parse");
        lines += 1;
    }
    assert_eq!(lines, buf.len());

    // Chrome trace: a JSON object with a non-empty traceEvents array.
    let chrome = export::chrome_trace(buf.events());
    let value = serde::json::from_str::<serde::Value>(&chrome).expect("chrome trace must parse");
    let serde::Value::Map(obj) = value else {
        panic!("chrome trace must be a JSON object");
    };
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let serde::Value::Seq(items) = events else {
        panic!("traceEvents must be an array");
    };
    assert_eq!(items.len(), buf.len());

    // Prometheus: every sample line is `name{labels} value` with a float
    // value, and the registered families are present.
    let prom = export::prometheus(&reg);
    assert!(prom.contains("smt_quantum_ipc_ICOUNT_bucket"));
    assert!(prom.contains("smt_rob_depth_per_thread_count"));
    for line in prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let value = line.rsplit(' ').next().expect("sample line has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad prometheus value {value:?} in {line:?}: {e}"));
    }
}
