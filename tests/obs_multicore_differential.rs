//! Multi-core observability differential suite.
//!
//! Mirror of `tests/obs_differential.rs` for the multi-core layer: the
//! per-core event rings, slot attribution, and the `MultiCoreSampler`
//! must not change what a `MultiCoreMachine` does. Each point runs twice
//! — once bare, once with every instrument enabled — and the pinned
//! observables (per-quantum cycles / commits / milli-IPC, per-thread
//! migration counts, the final [`CounterSnapshot`]) must serialize to
//! byte-identical JSON. On top of that, the two runs' full
//! [`MultiCoreSnapshot`] encodings must agree byte for byte: capture
//! strips instrumentation, so any residue the obs layer left in the
//! architectural state shows up as a checksum-covered byte diff.

use serde::{Deserialize, Serialize};
use smt_adts::prelude::*;
use smt_sim::obs::{MetricsRegistry, MultiCoreSampler};
use smt_sim::{run_scalar_quantum, CounterSnapshot, MultiCoreSnapshot};

const QUANTA: u64 = 6;
const QUANTUM_CYCLES: u64 = 2048;
const SEED: u64 = 42;
const CORES: usize = 2;
const MIGRATION_PENALTY: u64 = 64;
const EVENTS_CAP: usize = 16384;

/// Everything a run pins, in canonical-JSON-comparable form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Observables {
    quantum_cycles: Vec<u64>,
    quantum_committed: Vec<u64>,
    quantum_ipc_milli: Vec<u64>,
    migrations: Vec<u64>,
    final_counters: CounterSnapshot,
}

fn observables(series: &RunSeries, machine: &MultiCoreMachine) -> Observables {
    Observables {
        quantum_cycles: series.quanta.iter().map(|q| q.cycles).collect(),
        quantum_committed: series.quanta.iter().map(|q| q.committed).collect(),
        quantum_ipc_milli: series
            .quanta
            .iter()
            .map(|q| q.committed.saturating_mul(1000) / q.cycles.max(1))
            .collect(),
        migrations: machine.migrations().to_vec(),
        final_counters: machine.counter_snapshot(),
    }
}

fn fresh_machine(mix_id: usize) -> MultiCoreMachine {
    let mix = workloads::mix(mix_id).take_threads(4, 1);
    adts::multicore_for_mix(&mix, SEED, CORES, MIGRATION_PENALTY)
}

/// One allocation-policy point: returns the pinned observables as JSON
/// plus the machine's full snapshot encoding (instrumentation stripped
/// by `capture`, so both flavors should encode identically).
fn alloc_run(mix_id: usize, alloc: AllocKind, observed: bool) -> (String, Vec<u8>, u64) {
    let mut machine = fresh_machine(mix_id);
    let (series, events) = if observed {
        machine.enable_trace(EVENTS_CAP);
        machine.enable_attr();
        let mut reg = MetricsRegistry::new();
        let mut sampler = MultiCoreSampler::new(&mut reg, &machine);
        let mut cell = AllocCell::new(FetchPolicy::Icount, alloc, QUANTUM_CYCLES, &machine);
        for _ in 0..QUANTA {
            run_scalar_quantum(&mut cell, &mut machine);
            sampler.sample(&machine, &mut reg);
        }
        let recorded: u64 = machine
            .disable_trace()
            .into_iter()
            .flatten()
            .map(|buf| buf.recorded)
            .sum();
        machine.disable_attr();
        (cell.into_series(), recorded)
    } else {
        let series = adts::run_alloc(
            FetchPolicy::Icount,
            alloc,
            &mut machine,
            QUANTA,
            QUANTUM_CYCLES,
        );
        (series, 0)
    };
    machine.check_invariants();
    let json = serde::json::to_string(&observables(&series, &machine));
    let snapshot = MultiCoreSnapshot::capture(&machine, Vec::new()).to_bytes();
    (json, snapshot, events)
}

/// Fixed-policy point (static placement, no allocation decisions), same
/// contract.
fn fixed_run(mix_id: usize, observed: bool) -> (String, Vec<u8>, u64) {
    let mut machine = fresh_machine(mix_id);
    let mut events = 0;
    if observed {
        machine.enable_trace(EVENTS_CAP);
        machine.enable_attr();
    }
    let series =
        adts::run_fixed_multicore(FetchPolicy::Icount, &mut machine, QUANTA, QUANTUM_CYCLES);
    if observed {
        let mut reg = MetricsRegistry::new();
        let mut sampler = MultiCoreSampler::new(&mut reg, &machine);
        sampler.sample(&machine, &mut reg);
        events = machine
            .disable_trace()
            .into_iter()
            .flatten()
            .map(|buf| buf.recorded)
            .sum();
        machine.disable_attr();
    }
    machine.check_invariants();
    let json = serde::json::to_string(&observables(&series, &machine));
    let snapshot = MultiCoreSnapshot::capture(&machine, Vec::new()).to_bytes();
    (json, snapshot, events)
}

fn check_alloc_point(mix_id: usize, alloc: AllocKind) {
    let (bare, bare_snap, _) = alloc_run(mix_id, alloc, false);
    let (observed, obs_snap, events) = alloc_run(mix_id, alloc, true);
    assert_eq!(
        bare,
        observed,
        "obs instrumentation changed MIX{mix_id:02}/{}",
        alloc.name()
    );
    assert_eq!(
        bare_snap,
        obs_snap,
        "snapshot bytes diverged for MIX{mix_id:02}/{}",
        alloc.name()
    );
    assert!(events > 0, "observed run must record events");
}

#[test]
fn fixed_mix01_identical_with_obs_on() {
    let (bare, bare_snap, _) = fixed_run(1, false);
    let (observed, obs_snap, events) = fixed_run(1, true);
    assert_eq!(bare, observed, "obs instrumentation changed MIX01/fixed");
    assert_eq!(
        bare_snap, obs_snap,
        "snapshot bytes diverged for MIX01/fixed"
    );
    assert!(events > 0, "observed run must record events");
}

#[test]
fn alloc_static_mix01_identical_with_obs_on() {
    check_alloc_point(1, AllocKind::Static);
}

#[test]
fn alloc_rotate_mix01_identical_with_obs_on() {
    check_alloc_point(1, AllocKind::Rotate);
}

#[test]
fn alloc_ipc_greedy_mix09_identical_with_obs_on() {
    check_alloc_point(9, AllocKind::IpcGreedy);
}

#[test]
fn alloc_ilp_aware_mix09_identical_with_obs_on() {
    check_alloc_point(9, AllocKind::IlpAware);
}
