//! Oracle-bound and detector-thread-model checks across crates.

use smt_adts::prelude::*;

fn warmed(mix: &Mix, seed: u64) -> SmtMachine {
    let mut machine = adts::machine_for_mix(mix, seed);
    let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, 4, 8192);
    machine
}

#[test]
fn oracle_never_loses_to_fixed_icount() {
    for mix_id in [1, 9, 13] {
        let mix = workloads::mix(mix_id);
        let fixed =
            adts::run_fixed(FetchPolicy::Icount, &mut warmed(&mix, 42), 12, 8192).aggregate_ipc();
        let cfg = OracleConfig::default();
        let oracle = adts::run_oracle(&cfg, &mut warmed(&mix, 42), 12).aggregate_ipc();
        assert!(
            oracle >= 0.99 * fixed,
            "{}: oracle {oracle:.3} below fixed {fixed:.3}",
            mix.name
        );
    }
}

#[test]
fn oracle_uses_more_than_one_policy_across_mixes() {
    // Per-quantum margins are small, so any single short run may settle on
    // one policy; across a stormy, a memory-bound and a low-IPC mix the
    // oracle must exercise at least two of the triple.
    let cfg = OracleConfig::default();
    let mut used = std::collections::HashSet::new();
    for mix_id in [4, 6, 9] {
        let mix = workloads::mix(mix_id);
        let series = adts::run_oracle(&cfg, &mut warmed(&mix, 42), 15);
        for q in &series.quanta {
            used.insert(q.policy.clone());
        }
    }
    assert!(used.len() >= 2, "oracle never changed its mind: {used:?}");
}

#[test]
fn starved_dt_equals_fixed_icount() {
    let mix = workloads::mix(6);
    let cfg = AdtsConfig {
        ipc_threshold: 8.0,
        dt: DtModel::Starved,
        ..Default::default()
    };
    let s = adts::run_adaptive(cfg, &mut warmed(&mix, 42), 12);
    let f = adts::run_fixed(FetchPolicy::Icount, &mut warmed(&mix, 42), 12, 8192);
    assert!(s.switches.is_empty());
    assert_eq!(s.aggregate_ipc(), f.aggregate_ipc());
}

#[test]
fn budgeted_dt_is_between_free_and_starved_in_switch_count() {
    let mix = workloads::mix(9);
    let run = |dt: DtModel| {
        let cfg = AdtsConfig {
            ipc_threshold: 8.0,
            dt,
            ..Default::default()
        };
        adts::run_adaptive(cfg, &mut warmed(&mix, 42), 20)
            .switches
            .len()
    };
    let free = run(DtModel::Free);
    let budgeted = run(DtModel::Budgeted {
        throughput_factor: 0.05,
    });
    let starved = run(DtModel::Starved);
    assert_eq!(starved, 0);
    assert!(
        budgeted <= free,
        "budget cannot add switches: {budgeted} vs {free}"
    );
}

#[test]
fn dt_decision_cost_fits_idle_budget_on_loaded_machine() {
    // The paper's feasibility claim: even on a busy 8-thread machine the
    // idle fetch slots per quantum dwarf the decision cost.
    let mix = workloads::mix(3); // high-IPC mix = worst case for the DT
    let mut machine = warmed(&mix, 42);
    let before = adts::MachineSnapshot::take(&machine);
    let _ = adts::run_fixed(FetchPolicy::Icount, &mut machine, 10, 8192);
    let after = adts::MachineSnapshot::take(&machine);
    let q = adts::QuantumStats::between(&before, &after, 8);
    let idle_slots_per_quantum = q.idle_fetch_rate * 8192.0;
    let cost = HeuristicKind::Type4.dt_cost_instructions() as f64;
    assert!(
        idle_slots_per_quantum > 10.0 * cost,
        "idle budget {idle_slots_per_quantum:.0} too small for cost {cost}"
    );
}
