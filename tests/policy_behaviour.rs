//! Cross-crate behavioural checks on the fetch policies: the qualitative
//! orderings from Tullsen et al. [20] that the paper builds on must hold
//! in this substrate too.

use smt_adts::prelude::*;

fn fixed_ipc(mix: &Mix, policy: FetchPolicy, quanta: u64) -> f64 {
    let mut machine = adts::machine_for_mix(mix, 42);
    let _ = adts::run_fixed(policy, &mut machine, 4, 8192);
    adts::run_fixed(policy, &mut machine, quanta, 8192).aggregate_ipc()
}

#[test]
fn icount_beats_round_robin_on_balanced_mixes() {
    // [20]'s headline result. Checked on the diverse, well-balanced mix
    // where admission control matters most.
    let mix = workloads::mix(12);
    let icount = fixed_ipc(&mix, FetchPolicy::Icount, 25);
    let rr = fixed_ipc(&mix, FetchPolicy::RoundRobin, 25);
    assert!(
        icount > 1.02 * rr,
        "ICOUNT ({icount:.3}) must clearly beat RR ({rr:.3})"
    );
}

#[test]
fn policies_are_not_interchangeable() {
    // If all policies scored identically, the adaptive question would be
    // vacuous. Demand ≥2% spread between best and worst of the triple+RR
    // on the storm mix.
    let mix = workloads::mix(9);
    let ipcs: Vec<f64> = [
        FetchPolicy::Icount,
        FetchPolicy::BrCount,
        FetchPolicy::L1MissCount,
        FetchPolicy::RoundRobin,
    ]
    .iter()
    .map(|&p| fixed_ipc(&mix, p, 25))
    .collect();
    let best = ipcs.iter().copied().fold(f64::MIN, f64::max);
    let worst = ipcs.iter().copied().fold(f64::MAX, f64::min);
    assert!(best > 1.02 * worst, "no policy spread: {ipcs:?}");
}

#[test]
fn brcount_wins_the_papers_motivating_scenario() {
    // §1: four control-intensive threads in mispredict storms + four
    // well-behaved threads — BRCOUNT should recover what ICOUNT wastes.
    let mix = workloads::mix(9);
    let icount = fixed_ipc(&mix, FetchPolicy::Icount, 40);
    let brcount = fixed_ipc(&mix, FetchPolicy::BrCount, 40);
    assert!(
        brcount > icount,
        "BRCOUNT ({brcount:.3}) should beat ICOUNT ({icount:.3}) on MIX09"
    );
}

#[test]
fn smt_beats_single_thread_throughput() {
    let mix = workloads::mix(3);
    let eight = fixed_ipc(&mix, FetchPolicy::Icount, 15);
    let one = fixed_ipc(&mix.take_threads(1, 42), FetchPolicy::Icount, 15);
    assert!(
        eight > 1.5 * one,
        "8-thread SMT ({eight:.3}) must clearly beat 1 thread ({one:.3})"
    );
}

#[test]
fn all_ten_policies_run_on_all_mixes() {
    // Smoke coverage: every policy on every mix makes progress.
    for mix in Mix::all() {
        for policy in FetchPolicy::ALL {
            let mut machine = adts::machine_for_mix(&mix, 1);
            let s = adts::run_fixed(policy, &mut machine, 2, 2048);
            assert!(
                s.aggregate_ipc() > 0.05,
                "{} stalled on {}",
                policy.name(),
                mix.name
            );
        }
    }
}
