//! Conservation property for merged multi-core slot attribution.
//!
//! `crates/sim/tests/proptest_attr.rs` pins per-cycle conservation on one
//! `SmtMachine`; this suite extends the claim across the lockstep
//! multi-core executor: with attribution enabled on every core, each
//! core's stacks must account for `cycles × width` slots per stage, and
//! [`merge_attr_snapshots`] must therefore conserve
//! `cycles × width × n_cores` — under any mix, allocation policy and
//! migration penalty, with migration cost attributed (never lost) in the
//! migrated contexts' stacks.

use proptest::prelude::*;
use smt_adts::prelude::*;
use smt_sim::{merge_attr_snapshots, run_scalar_quantum, AttrSnapshot};

const SEED: u64 = 42;

/// Run `quanta` allocation-policy quanta with attribution on; return the
/// per-core snapshots and the machine's stage widths.
fn attributed_run(
    mix_id: usize,
    threads: usize,
    cores: usize,
    alloc: AllocKind,
    penalty: u64,
    quanta: u64,
    quantum_cycles: u64,
) -> (Vec<AttrSnapshot>, (u64, u64, u64)) {
    let mix = workloads::mix(mix_id).take_threads(threads, 1);
    let mut machine = adts::multicore_for_mix(&mix, SEED, cores, penalty);
    let widths = {
        let c = machine.core(0).config();
        (
            c.fetch_width as u64,
            c.issue_width as u64,
            c.commit_width as u64,
        )
    };
    machine.enable_attr();
    let mut cell = AllocCell::new(FetchPolicy::Icount, alloc, quantum_cycles, &machine);
    for _ in 0..quanta {
        run_scalar_quantum(&mut cell, &mut machine);
    }
    machine.check_invariants();
    let snaps: Vec<AttrSnapshot> = machine
        .disable_attr()
        .into_iter()
        .map(|a| a.expect("attr enabled on every core").snapshot())
        .collect();
    (snaps, widths)
}

fn stage_totals(snap: &AttrSnapshot) -> (u64, u64, u64) {
    (
        snap.threads.iter().map(|s| s.fetch_total()).sum(),
        snap.threads.iter().map(|s| s.issue_total()).sum(),
        snap.threads.iter().map(|s| s.commit_total()).sum(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Per-core and merged conservation over random mixes, allocation
    /// policies and migration penalties.
    #[test]
    fn merged_attribution_conserves_cycles_width_cores(
        mix_id in 1usize..10,
        threads in 2usize..5,
        cores in 2usize..4,
        kind in 0usize..4,
        penalty in prop::sample::select(vec![0u64, 64, 256]),
        quanta in 2u64..5,
    ) {
        let alloc = AllocKind::ALL[kind];
        let quantum_cycles = 512;
        let (snaps, (fw, iw, cw)) =
            attributed_run(mix_id, threads, cores, alloc, penalty, quanta, quantum_cycles);
        prop_assert_eq!(snaps.len(), cores);

        // Lockstep cores attribute the same cycle count, and each core
        // conserves every stage's slots on its own.
        let cycles = snaps[0].cycles;
        prop_assert_eq!(cycles, quanta * quantum_cycles);
        for (core, snap) in snaps.iter().enumerate() {
            prop_assert_eq!(snap.cycles, cycles, "core {} cycle count", core);
            let (f, i, c) = stage_totals(snap);
            prop_assert_eq!(f, cycles * fw, "core {} fetch slots", core);
            prop_assert_eq!(i, cycles * iw, "core {} issue slots", core);
            prop_assert_eq!(c, cycles * cw, "core {} commit slots", core);
        }

        // The merged snapshot keeps the shared cycle count, concatenates
        // the per-core stacks, and conserves cycles × width × n_cores.
        let merged = merge_attr_snapshots(&snaps);
        prop_assert_eq!(merged.cycles, cycles);
        prop_assert_eq!(
            merged.threads.len(),
            snaps.iter().map(|s| s.threads.len()).sum::<usize>()
        );
        let (f, i, c) = stage_totals(&merged);
        let n = cores as u64;
        prop_assert_eq!(f, cycles * fw * n, "merged fetch slots");
        prop_assert_eq!(i, cycles * iw * n, "merged issue slots");
        prop_assert_eq!(c, cycles * cw * n, "merged commit slots");
    }

    /// A migrating policy must surface its migration cost in the
    /// attribution (the `migration` fetch category of the moved
    /// contexts), not drop it: conservation plus a nonzero migration
    /// count implies nonzero migration-attributed slots.
    #[test]
    fn migration_cost_is_attributed_when_threads_move(
        mix_id in 1usize..10,
        quanta in 3u64..6,
    ) {
        let (snaps, _) =
            attributed_run(mix_id, 4, 2, AllocKind::Rotate, 256, quanta, 512);
        let migration_slots: u64 = snaps
            .iter()
            .flat_map(|s| s.threads.iter())
            .map(|st| st.fetch_count(smt_sim::FetchCause::Migration))
            .sum();
        // Rotate re-places every context each quantum with a nonzero
        // penalty, so some slots must land in the migration category.
        prop_assert!(migration_slots > 0, "no slots attributed to migration");
    }
}
