//! Property-based tests across the full stack: arbitrary (valid) profiles
//! and short machine runs must uphold the structural invariants.

use proptest::prelude::*;
use smt_adts::prelude::*;
use std::sync::Arc;

/// Strategy: a valid AppProfile within sane ranges.
fn arb_profile() -> impl Strategy<Value = AppProfile> {
    (
        0.0..0.25f64, // branch_frac
        0.05..0.3f64, // load_frac
        0.0..0.15f64, // store_frac
        0.0..0.8f64,  // fp_frac
        1.0..6.0f64,  // mean_dep_dist
        0.5..1.0f64,  // branch_bias
        0.0..1.0f64,  // pattern_frac
        12u32..24,    // log2 data ws
        10u32..18,    // log2 code bytes
        0.0..0.4f64,  // cold_frac
        0.0..1.0f64,  // stride_frac
    )
        .prop_map(|(br, ld, st, fp, dep, bias, pat, ws, code, cold, stride)| {
            AppProfile::builder("prop")
                .branch_frac(br)
                .load_frac(ld)
                .store_frac(st)
                .fp_frac(fp)
                .mean_dep_dist(dep)
                .branch_bias(bias)
                .pattern_frac(pat)
                .data_ws_bytes(1 << ws)
                .code_bytes(1 << code)
                .cold_frac(cold)
                .stride_frac(stride)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn any_profile_yields_well_formed_ops(p in arb_profile(), seed in 0u64..1000) {
        let mut s = UopStream::new(Arc::new(p), seed, workloads::thread_addr_base(0));
        for _ in 0..2_000 {
            prop_assert!(s.next_uop().is_well_formed());
        }
    }

    #[test]
    fn machine_invariants_hold_for_arbitrary_profiles(
        p in arb_profile(),
        seed in 0u64..1000,
        n in 1usize..5,
    ) {
        let cfg = SimConfig::with_threads(n);
        let streams = (0..n)
            .map(|i| UopStream::new(
                Arc::new(p.clone()),
                seed + i as u64,
                workloads::thread_addr_base(i),
            ))
            .collect();
        let mut m = SmtMachine::new(cfg, streams);
        let mut tsu = Tsu::new(FetchPolicy::Icount, n);
        for _ in 0..40 {
            m.run(50, &mut tsu);
            m.check_invariants();
        }
        // Committed work is bounded by correct-path fetch.
        let fetched: u64 = (0..n).map(|t| m.counters(Tid(t as u8)).fetched).sum();
        prop_assert!(m.total_committed() <= fetched);
    }

    #[test]
    fn adaptive_scheduler_never_panics_and_counts_consistently(
        seed in 0u64..200,
        m_thr in 0.0..8.0f64,
        kind_i in 0usize..5,
    ) {
        let mix = workloads::mix(1 + (seed % 13) as usize);
        let mut machine = adts::machine_for_mix(&mix, seed);
        let cfg = AdtsConfig {
            ipc_threshold: m_thr,
            heuristic: HeuristicKind::ALL[kind_i],
            quantum_cycles: 2048,
            ..Default::default()
        };
        let s = adts::run_adaptive(cfg, &mut machine, 6);
        prop_assert_eq!(s.quanta.len(), 6);
        // Judged switches never exceed total switches; benign ≤ judged.
        let judged = s.judged_switches();
        prop_assert!(judged <= s.switches.len());
        let benign = s.switches.iter().filter(|e| e.benign == Some(true)).count();
        prop_assert!(benign <= judged);
        // Quantum records sum to the machine's committed total (after the
        // warmup-free start).
        let sum: u64 = s.quanta.iter().map(|q| q.committed).sum();
        prop_assert_eq!(sum, machine.total_committed());
    }
}
