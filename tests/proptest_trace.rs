//! Property tests for the trace codec and the replay backend.
//!
//! Three layers, matching the format's own layering:
//!
//! - **Record codec**: arbitrary well-formed micro-op sequences round-trip
//!   through the delta encoding, at any chunk granularity.
//! - **Container**: arbitrary multi-thread traces round-trip through
//!   [`TraceWriter`]/[`TraceFile`], and the index-driven partial decode is
//!   always a suffix of the full decode.
//! - **Replay**: for arbitrary mixes, seeds and thread counts, a machine
//!   over the captured trace is counter-for-counter indistinguishable from
//!   the synthetic machine it was captured from — including through a
//!   mid-run checkpoint/restore of the replay machine.

use proptest::prelude::*;
use smt_adts::prelude::*;
use smt_bench::tracebench::{capture_mix_trace, trace_machine};
use smt_bench::ExpParams;
use smt_isa::codec::ByteWriter;
use smt_isa::tracefile::{decode_chunk_body, encode_chunk_body, TraceFile, TraceWriter};
use smt_isa::uop::{BranchInfo, BranchKind, MemInfo, MicroOp, OpKind};
use smt_isa::{ArchReg, NUM_ARCH_REGS_PER_CLASS};
use smt_sim::snapshot::MachineSnapshot;
use smt_sim::CounterSnapshot;
use smt_workloads::TraceStream;
use std::sync::Arc;

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    (any::<bool>(), 0u8..NUM_ARCH_REGS_PER_CLASS).prop_map(|(fp, idx)| {
        if fp {
            ArchReg::fp(idx)
        } else {
            ArchReg::int(idx)
        }
    })
}

/// Any well-formed micro-op: every kind, presence-flag combination and
/// operand value the encoder's field packing has to carry, with mem and
/// branch info present exactly when the kind implies them.
fn arb_op() -> impl Strategy<Value = MicroOp> {
    (
        prop::sample::select(vec![
            OpKind::IntAlu,
            OpKind::IntMul,
            OpKind::IntDiv,
            OpKind::FpAlu,
            OpKind::FpMul,
            OpKind::FpDiv,
            OpKind::Load,
            OpKind::Store,
            OpKind::Branch,
            OpKind::Syscall,
            OpKind::Nop,
        ]),
        any::<u64>(), // pc (the delta codec must survive arbitrary jumps)
        prop::option::of(arb_reg()),
        prop::option::of(arb_reg()),
        prop::option::of(arb_reg()),
        any::<u64>(), // data address
        any::<u8>(),  // access size
        prop::sample::select(vec![
            BranchKind::Conditional,
            BranchKind::Unconditional,
            BranchKind::Call,
            BranchKind::Return,
        ]),
        any::<bool>(), // taken
        any::<u64>(),  // branch target
    )
        .prop_map(
            |(kind, pc, dst, src1, src2, addr, size, bkind, taken, target)| MicroOp {
                kind,
                pc,
                dst,
                src1,
                src2,
                mem: matches!(kind, OpKind::Load | OpKind::Store).then_some(MemInfo { addr, size }),
                branch: matches!(kind, OpKind::Branch).then_some(BranchInfo {
                    kind: bkind,
                    taken,
                    target,
                }),
            },
        )
}

fn stream_state(s: &TraceStream) -> Vec<u8> {
    let mut w = ByteWriter::new();
    s.encode_state(&mut w);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn chunk_bodies_roundtrip_any_ops(ops in prop::collection::vec(arb_op(), 1..300)) {
        let body = encode_chunk_body(&ops);
        prop_assert_eq!(decode_chunk_body(&body, ops.len()).unwrap(), ops);
    }

    #[test]
    fn containers_roundtrip_any_chunking(
        a in prop::collection::vec(arb_op(), 1..400),
        b in prop::collection::vec(arb_op(), 1..150),
        chunk_ops in 1usize..80,
        start_frac in 0.0..1.0f64,
    ) {
        let profile = workloads::app("gzip");
        let mut w = TraceWriter::new("prop", 1, 64).with_chunk_ops(chunk_ops);
        w.add_thread(&profile, 0x1_0000_0000, &a);
        w.add_thread(&profile, 0x2_0000_0000, &b);
        w.set_quantum_marks(vec![vec![a.len() as u64 / 2, b.len() as u64 / 2]]);
        let f = TraceFile::parse(w.finish()).unwrap();
        prop_assert_eq!(f.read_thread(0).unwrap(), a.clone());
        prop_assert_eq!(f.read_thread(1).unwrap(), b.clone());
        // The fast-forward path must agree with the full decode at an
        // arbitrary cut, chunk-aligned or not.
        let start = (start_frac * a.len() as f64) as u64;
        prop_assert_eq!(
            f.read_thread_from(0, start).unwrap(),
            a[start as usize..].to_vec()
        );
    }

    #[test]
    fn fast_forward_is_stepping_even_past_the_end(
        ops in prop::collection::vec(arb_op(), 1..120),
        k in 0u64..400,
    ) {
        let profile = Arc::new(workloads::app("gzip"));
        let ops = Arc::new(ops);
        let mut skipped = TraceStream::replay(profile.clone(), 0x1_0000_0000, ops.clone());
        skipped.fast_forward_to(k);
        let mut stepped = TraceStream::replay(profile, 0x1_0000_0000, ops);
        for _ in 0..k {
            stepped.next_uop();
        }
        // Past-the-end fast-forwards land inside the cyclic wrap, exactly
        // where stepping lands.
        prop_assert_eq!(stream_state(&skipped), stream_state(&stepped));
        for _ in 0..32 {
            prop_assert_eq!(skipped.next_uop(), stepped.next_uop());
        }
    }
}

proptest! {
    // Each case simulates the full policy matrix three times over (capture
    // sizing, synthetic reference, replay), so keep the count modest.
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    #[test]
    fn replay_is_indistinguishable_from_synthetic(
        mix_id in 1usize..14,
        threads in 2usize..4,
        seed in 0u64..50,
    ) {
        let p = ExpParams {
            seed,
            warmup_quanta: 1,
            quanta: 2,
            quantum_cycles: 256,
            mix_ids: vec![mix_id],
        };
        let mix = workloads::mix(mix_id).take_threads(threads, seed);
        let file = TraceFile::parse(capture_mix_trace(&mix, &p)).unwrap();

        let mut synth = adts::machine_for_mix(&mix, seed);
        let mut replay = trace_machine(&file).unwrap();
        for m in [&mut synth, &mut replay] {
            adts::run_fixed(FetchPolicy::Icount, m, p.warmup_quanta, p.quantum_cycles);
        }

        // Quantum 1 under ICOUNT, compared delta-by-delta…
        let mut da: Vec<CounterSnapshot> = Vec::new();
        let mut db: Vec<CounterSnapshot> = Vec::new();
        adts::run_fixed_observed(FetchPolicy::Icount, &mut synth, 1, p.quantum_cycles,
            |_, d| da.push(d.clone()));
        adts::run_fixed_observed(FetchPolicy::Icount, &mut replay, 1, p.quantum_cycles,
            |_, d| db.push(d.clone()));
        prop_assert_eq!(&da, &db, "first measured quantum diverged");

        // …then a checkpoint/restore of the replay machine mid-trace: the
        // restored machine and both originals must agree on quantum 2.
        let bytes = MachineSnapshot::capture(&replay).to_bytes();
        let mut restored = MachineSnapshot::from_bytes(&bytes).unwrap().restore();
        let (mut d2s, mut d2r, mut d2x) = (Vec::new(), Vec::new(), Vec::new());
        adts::run_fixed_observed(FetchPolicy::Icount, &mut synth, 1, p.quantum_cycles,
            |_, d| d2s.push(d.clone()));
        adts::run_fixed_observed(FetchPolicy::Icount, &mut replay, 1, p.quantum_cycles,
            |_, d| d2r.push(d.clone()));
        adts::run_fixed_observed(FetchPolicy::Icount, &mut restored, 1, p.quantum_cycles,
            |_, d| d2x.push(d.clone()));
        prop_assert_eq!(&d2s, &d2r, "second measured quantum diverged");
        prop_assert_eq!(&d2r, &d2x, "restored replay diverged from uninterrupted replay");
        prop_assert_eq!(
            MachineSnapshot::capture(&replay).to_bytes(),
            MachineSnapshot::capture(&restored).to_bytes(),
            "final snapshots differ after identical futures"
        );
    }
}
