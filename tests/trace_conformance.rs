//! Trace capture→replay conformance: the contracts the trace frontend
//! guarantees, exercised over the *committed* capture fixtures so the
//! suite also gates the on-disk format.
//!
//! Three contracts are pinned here (the golden observables themselves
//! live in `golden_trace_replay.rs`):
//!
//! 1. **Counter bit-identity** — a fixed-policy run over a replayed trace
//!    produces, quantum by quantum, the exact `CounterSnapshot` deltas of
//!    the synthetic run it was captured from.
//! 2. **Snapshot bit-identity** — trace-backed machines checkpoint and
//!    restore through the `SMTCKPT` container byte-identically: restoring
//!    a snapshot and re-capturing yields the same bytes, and a restored
//!    machine's future is the original's future.
//! 3. **Fast-forward equivalence** — skipping a `TraceStream` to any
//!    recorded quantum boundary (via the header's consumption marks) is
//!    indistinguishable from stepping there op by op, and the chunk-index
//!    fast path `read_thread_from` is a pure suffix of the full decode.

#[path = "golden_common/mod.rs"]
mod golden_common;

use golden_common::{
    mix_for, trace_capture_path, trace_points, SEED, TRACE_QUANTA, TRACE_QUANTUM_CYCLES,
    TRACE_WARMUP_QUANTA,
};
use smt_adts::prelude::*;
use smt_bench::tracebench::trace_machine;
use smt_isa::codec::ByteWriter;
use smt_isa::tracefile::TraceFile;
use smt_sim::snapshot::MachineSnapshot;
use smt_sim::CounterSnapshot;
use smt_workloads::TraceStream;

fn load_capture(mix_id: usize, threads: usize) -> TraceFile {
    let path = trace_capture_path(mix_id, threads);
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing trace capture {} ({e}); bless via \
             SMT_GOLDEN_BLESS=1 cargo test --test golden_trace_replay",
            path.display()
        )
    });
    TraceFile::parse(bytes).expect("committed capture parses")
}

fn warm(m: &mut SmtMachine) {
    adts::run_fixed(
        FetchPolicy::Icount,
        m,
        TRACE_WARMUP_QUANTA,
        TRACE_QUANTUM_CYCLES,
    );
}

fn observed_deltas(policy: FetchPolicy, m: &mut SmtMachine, quanta: u64) -> Vec<CounterSnapshot> {
    let mut deltas = Vec::new();
    adts::run_fixed_observed(policy, m, quanta, TRACE_QUANTUM_CYCLES, |_, d| {
        deltas.push(d.clone())
    });
    deltas
}

/// Contract 1: per-quantum counter deltas of the replay equal the
/// synthetic run's, for every committed capture point and a policy from
/// each family (round-robin static, ICOUNT feedback, BRCOUNT speculation).
#[test]
fn replay_matches_synthetic_quantum_by_quantum() {
    for (mix_id, threads) in trace_points() {
        let file = load_capture(mix_id, threads);
        let mix = mix_for(mix_id, threads);
        for policy in [
            FetchPolicy::RoundRobin,
            FetchPolicy::Icount,
            FetchPolicy::BrCount,
        ] {
            let mut synth = adts::machine_for_mix(&mix, SEED);
            let mut replay = trace_machine(&file).expect("replay machine");
            warm(&mut synth);
            warm(&mut replay);
            assert_eq!(
                observed_deltas(policy, &mut synth, TRACE_QUANTA),
                observed_deltas(policy, &mut replay, TRACE_QUANTA),
                "mix{mix_id:02} t{threads} {}",
                policy.name()
            );
        }
    }
}

/// Contract 2: checkpoint/restore of a trace-backed machine is exact.
/// Restoring mid-trace and re-capturing reproduces the snapshot bytes;
/// the restored machine's subsequent quanta and final snapshot equal the
/// uninterrupted machine's.
#[test]
fn mid_trace_checkpoint_restore_is_bit_exact() {
    let file = load_capture(1, 2);
    let mut m = trace_machine(&file).expect("replay machine");
    warm(&mut m);
    adts::run_fixed(FetchPolicy::Icount, &mut m, 2, TRACE_QUANTUM_CYCLES);

    let snap = MachineSnapshot::capture(&m);
    let bytes = snap.to_bytes();
    let mut restored = MachineSnapshot::from_bytes(&bytes)
        .expect("snapshot decodes")
        .restore();
    assert_eq!(
        MachineSnapshot::capture(&restored).to_bytes(),
        bytes,
        "capture∘restore must be the identity on snapshot bytes"
    );

    let rest = TRACE_QUANTA - 2;
    assert_eq!(
        observed_deltas(FetchPolicy::Icount, &mut m, rest),
        observed_deltas(FetchPolicy::Icount, &mut restored, rest),
        "restored machine diverged from the uninterrupted one"
    );
    assert_eq!(
        MachineSnapshot::capture(&m).to_bytes(),
        MachineSnapshot::capture(&restored).to_bytes(),
        "futures agree but final snapshots differ"
    );
}

/// Contract 2, across the capture→replay boundary: a synthetic machine
/// and its trace replay snapshot to *different* bytes (the stream leaves
/// differ by design) but both decode, and each continues identically to
/// its own uninterrupted twin under every heuristic-relevant policy.
#[test]
fn trace_snapshots_are_self_contained() {
    let file = load_capture(5, 4);
    let mut m = trace_machine(&file).expect("replay machine");
    warm(&mut m);
    let bytes = MachineSnapshot::capture(&m).to_bytes();
    // The snapshot embeds the replay ops: a machine restored from bytes
    // alone (no TraceFile in sight) must keep replaying correctly.
    drop(file);
    let mut restored = MachineSnapshot::from_bytes(&bytes)
        .expect("decodes")
        .restore();
    assert_eq!(
        observed_deltas(FetchPolicy::Icount, &mut m, TRACE_QUANTA),
        observed_deltas(FetchPolicy::Icount, &mut restored, TRACE_QUANTA),
    );
}

/// Contract 3 at the stream level: fast-forwarding to every recorded
/// quantum mark equals stepping there, in consumed count, state bytes and
/// every subsequent op.
#[test]
fn fast_forward_to_quantum_equals_stepping_there() {
    let file = load_capture(1, 2);
    let marks = &file.meta().quantum_marks;
    assert!(!marks.is_empty(), "capture must carry quantum marks");
    for (q, mark) in marks.iter().enumerate() {
        for (t, &k) in mark.iter().enumerate() {
            let mut skipped = TraceStream::from_file(&file, t).expect("stream");
            skipped.fast_forward_to(k);
            let mut stepped = TraceStream::from_file(&file, t).expect("stream");
            for _ in 0..k {
                stepped.next_uop();
            }
            assert_eq!(skipped.generated(), stepped.generated(), "q{q} t{t}");
            let (mut wa, mut wb) = (ByteWriter::new(), ByteWriter::new());
            skipped.encode_state(&mut wa);
            stepped.encode_state(&mut wb);
            assert_eq!(
                wa.into_bytes(),
                wb.into_bytes(),
                "skip-to-quantum-{q} state differs from replay-through (t{t})"
            );
            for i in 0..64 {
                assert_eq!(skipped.next_uop(), stepped.next_uop(), "q{q} t{t} op {i}");
            }
        }
    }
}

/// Contract 3 at the container level: the index-driven partial decode is
/// a pure suffix of the full decode at every quantum mark (the tracefile
/// unit tests pin arbitrary offsets; this pins the offsets replay uses).
#[test]
fn partial_decode_is_a_suffix_of_full_decode_at_every_mark() {
    let file = load_capture(1, 2);
    for t in 0..file.n_threads() {
        let full = file.read_thread(t).expect("full decode");
        assert_eq!(full.len() as u64, file.thread_ops(t));
        for mark in &file.meta().quantum_marks {
            let k = mark[t].min(file.thread_ops(t));
            assert_eq!(
                file.read_thread_from(t, k).expect("partial decode"),
                full[k as usize..],
                "thread {t} from op {k}"
            );
        }
    }
}
