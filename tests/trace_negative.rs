//! Negative-path suite for the `SMTTRACE` container: every corruption
//! mode must surface as a typed [`CodecError`] — never a panic, never
//! silently-wrong ops.
//!
//! The format's validation is two-phase by design: [`TraceFile::parse`]
//! verifies structure (magic, version, header and index checksums, chunk
//! framing and per-thread op tiling) while chunk *bodies* are verified
//! lazily on first decode. The corruption tests therefore probe both
//! phases: `parse` alone for structural damage, `parse` + full read for
//! body damage.

use smt_isa::codec::{fnv1a_64, CodecError};
use smt_isa::tracefile::{
    decode_chunk_body, encode_chunk_body, TraceFile, TraceWriter, TRACE_VERSION,
};
use smt_isa::uop::{BranchInfo, BranchKind, MemInfo, MicroOp, OpKind};
use smt_isa::{AppProfile, ArchReg};

/// A small but structurally rich trace: two threads, multiple chunks
/// each, every record shape (loads, stores, branches, fp, nops), marks.
fn sample_trace() -> Vec<u8> {
    let profile = AppProfile::builder("neg").build();
    let ops_for = |salt: u64, n: usize| -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                let pc = 0x4000 + salt * 0x100 + 4 * i as u64;
                match i % 4 {
                    0 => MicroOp {
                        kind: OpKind::Load,
                        pc,
                        dst: Some(ArchReg::int((i % 30) as u8)),
                        src1: Some(ArchReg::int(2)),
                        src2: None,
                        mem: Some(MemInfo {
                            addr: 0x1_0000 + 16 * i as u64,
                            size: 8,
                        }),
                        branch: None,
                    },
                    1 => MicroOp {
                        kind: OpKind::Branch,
                        pc,
                        dst: None,
                        src1: Some(ArchReg::int(5)),
                        src2: None,
                        mem: None,
                        branch: Some(BranchInfo {
                            kind: BranchKind::Conditional,
                            taken: i % 3 == 0,
                            target: pc.wrapping_add(32),
                        }),
                    },
                    2 => MicroOp {
                        kind: OpKind::FpMul,
                        pc,
                        dst: Some(ArchReg::fp(1)),
                        src1: Some(ArchReg::fp(2)),
                        src2: Some(ArchReg::fp(3)),
                        mem: None,
                        branch: None,
                    },
                    _ => MicroOp::nop(pc),
                }
            })
            .collect()
    };
    let mut w = TraceWriter::new("negative-path sample", 7, 256).with_chunk_ops(16);
    w.add_thread(&profile, 0x1_0000_0000, &ops_for(0, 60));
    w.add_thread(&profile, 0x2_0000_0000, &ops_for(9, 37));
    w.set_quantum_marks(vec![vec![8, 5], vec![40, 30], vec![60, 37]]);
    w.finish()
}

/// Parse, and if that succeeds decode every thread — the full read path a
/// replay consumer exercises. Any corruption must fail one of the two.
fn full_read(bytes: Vec<u8>) -> Result<(), CodecError> {
    let f = TraceFile::parse(bytes)?;
    for t in 0..f.n_threads() {
        f.read_thread(t)?;
    }
    Ok(())
}

fn trailer(bytes: &[u8]) -> (usize, usize) {
    let n = bytes.len();
    let off = u64::from_le_bytes(bytes[n - 16..n - 8].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[n - 8..].try_into().unwrap()) as usize;
    (off, len)
}

/// Mutate the index region in place, then restamp its checksum so the
/// mutation (not the checksum) is what the parser has to catch.
fn with_restamped_index(mut bytes: Vec<u8>, f: impl FnOnce(&mut [u8])) -> Vec<u8> {
    let n = bytes.len();
    let (off, len) = trailer(&bytes);
    f(&mut bytes[off..off + len]);
    let fnv = fnv1a_64(&bytes[off..off + len]);
    bytes[n - 24..n - 16].copy_from_slice(&fnv.to_le_bytes());
    bytes
}

const INDEX_ENTRY_BYTES: usize = 21; // tid u8 | first_idx u64 | n_ops u32 | offset u64

#[test]
fn the_sample_is_valid_to_begin_with() {
    full_read(sample_trace()).expect("uncorrupted sample must round-trip");
    let f = TraceFile::parse(sample_trace()).unwrap();
    assert_eq!(f.n_threads(), 2);
    assert!(f.thread_ops(0) == 60 && f.thread_ops(1) == 37);
}

/// Truncation at *every* byte boundary: each proper prefix must decode to
/// an error, never a panic and never a spuriously valid file.
#[test]
fn truncation_at_every_cut_is_a_typed_error() {
    let bytes = sample_trace();
    for cut in 0..bytes.len() {
        let err = full_read(bytes[..cut].to_vec())
            .expect_err(&format!("prefix of {cut} bytes must not decode"));
        // The error itself must be displayable (the CLI prints it).
        assert!(!err.to_string().is_empty());
    }
}

/// Single-byte flips at *every* offset: the checksummed regions (header,
/// bodies, index) and the cross-checked framing leave no byte of the
/// container unprotected.
#[test]
fn every_single_byte_flip_is_detected() {
    let bytes = sample_trace();
    for at in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[at] ^= 0x40;
        full_read(bad).expect_err(&format!("flip at byte {at} must be detected"));
    }
}

#[test]
fn foreign_magic_is_rejected() {
    let mut bytes = sample_trace();
    bytes[..8].copy_from_slice(b"SMTCKPT\0");
    assert!(matches!(TraceFile::parse(bytes), Err(CodecError::BadMagic)));
}

#[test]
fn future_version_is_rejected_with_both_versions_named() {
    let mut bytes = sample_trace();
    let future = TRACE_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    match TraceFile::parse(bytes) {
        Err(CodecError::UnsupportedVersion { found, expected }) => {
            assert_eq!(found, future);
            assert_eq!(expected, TRACE_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn header_corruption_is_a_checksum_mismatch() {
    let mut bytes = sample_trace();
    bytes[24] ^= 0x01; // inside the header payload (source string)
    assert!(matches!(
        TraceFile::parse(bytes),
        Err(CodecError::ChecksumMismatch)
    ));
}

#[test]
fn index_corruption_is_a_checksum_mismatch() {
    let mut bytes = sample_trace();
    let (off, _) = trailer(&bytes);
    bytes[off] ^= 0x01;
    assert!(matches!(
        TraceFile::parse(bytes),
        Err(CodecError::ChecksumMismatch)
    ));
}

/// Reordered chunks (a valid checksum over a wrong sequence) must be
/// caught by the per-thread tiling check, with a readable message.
#[test]
fn out_of_order_chunk_sequence_is_rejected() {
    let bytes = sample_trace();
    let bad = with_restamped_index(bytes, |index| {
        // Entries 0 and 1 are thread 0's first two chunks (first_idx 0
        // and 16); swapping them breaks the required contiguous tiling.
        let (a, rest) = index.split_at_mut(INDEX_ENTRY_BYTES);
        a.swap_with_slice(&mut rest[..INDEX_ENTRY_BYTES]);
    });
    match TraceFile::parse(bad) {
        Err(CodecError::Invalid(msg)) => {
            assert!(msg.contains("out-of-order or gapped"), "{msg}")
        }
        other => panic!("expected Invalid(out-of-order), got {other:?}"),
    }
}

/// A chunk claiming a thread id the header never declared.
#[test]
fn out_of_range_tid_is_rejected() {
    let bad = with_restamped_index(sample_trace(), |index| index[0] = 6);
    match TraceFile::parse(bad) {
        Err(CodecError::Invalid(msg)) => {
            assert!(msg.contains("names thread 6"), "{msg}")
        }
        other => panic!("expected Invalid(bad tid), got {other:?}"),
    }
}

/// Body damage is caught lazily: structure parses, the read fails. This
/// pins the two-phase contract explicitly.
#[test]
fn body_corruption_parses_but_fails_on_read() {
    let bytes = sample_trace();
    let (ioff, _) = trailer(&bytes);
    // Entry 0's chunk offset lives at index bytes 13..21.
    let chunk_off = u64::from_le_bytes(bytes[ioff + 13..ioff + 21].try_into().unwrap()) as usize;
    // Chunk layout: tid u8 | first_idx u64 | n_ops u32 | body_len u32 | body…
    let body_start = chunk_off + 1 + 8 + 4 + 4;
    let mut bad = bytes.clone();
    bad[body_start] ^= 0x01;
    let f = TraceFile::parse(bad).expect("structural parse must still succeed");
    assert!(matches!(
        f.read_thread(0),
        Err(CodecError::ChecksumMismatch)
    ));
    // The undamaged thread stays readable: corruption is contained.
    assert!(f.read_thread(1).is_ok());
}

/// A body that checksums correctly but decodes to reserved bits must be
/// rejected by the record decoder itself (defense against a buggy or
/// malicious writer, not bit rot).
#[test]
fn reserved_record_bits_are_bad_tags() {
    let ops = vec![MicroOp::nop(0x1000)];
    let mut body = encode_chunk_body(&ops);
    body[0] |= 0x80; // reserved lead-byte bit
    match decode_chunk_body(&body, 1) {
        Err(CodecError::BadTag { what, .. }) => assert_eq!(what, "trace record lead"),
        other => panic!("expected BadTag, got {other:?}"),
    }

    let mut body = encode_chunk_body(&ops);
    body[0] = (body[0] & 0xF0) | 0x0B; // kind tag 11: one past the last OpKind
    match decode_chunk_body(&body, 1) {
        Err(CodecError::BadTag { what, tag }) => {
            assert_eq!(what, "trace OpKind");
            assert_eq!(tag, 11);
        }
        other => panic!("expected BadTag, got {other:?}"),
    }

    let branch = vec![MicroOp {
        kind: OpKind::Branch,
        pc: 0x1000,
        dst: None,
        src1: None,
        src2: None,
        mem: None,
        branch: Some(BranchInfo {
            kind: BranchKind::Call,
            taken: true,
            target: 0x2000,
        }),
    }];
    let mut body = encode_chunk_body(&branch);
    let n = body.len();
    // The packed branch byte precedes the final target varint; set one of
    // its reserved high bits.
    body[n - 3] |= 0x08;
    match decode_chunk_body(&body, 1) {
        Err(CodecError::BadTag { what, .. }) => assert_eq!(what, "trace branch byte"),
        other => panic!("expected BadTag, got {other:?}"),
    }
}

#[test]
fn out_of_range_register_index_is_rejected() {
    let ops = vec![MicroOp {
        kind: OpKind::IntAlu,
        pc: 0x1000,
        dst: Some(ArchReg::int(3)),
        src1: None,
        src2: None,
        mem: None,
        branch: None,
    }];
    let mut body = encode_chunk_body(&ops);
    let n = body.len();
    body[n - 1] = 0x7F; // register index 127 with NUM_ARCH_REGS_PER_CLASS = 32
    match decode_chunk_body(&body, 1) {
        Err(CodecError::Invalid(msg)) => assert!(msg.contains("register index"), "{msg}"),
        other => panic!("expected Invalid(register), got {other:?}"),
    }
}

#[test]
fn chunk_bodies_reject_trailing_and_missing_bytes() {
    let ops: Vec<MicroOp> = (0..5).map(|i| MicroOp::nop(0x1000 + 4 * i)).collect();
    let body = encode_chunk_body(&ops);
    // One op short of the payload: trailing bytes.
    assert!(matches!(
        decode_chunk_body(&body, 4),
        Err(CodecError::TrailingBytes { .. })
    ));
    // One op beyond the payload: truncation.
    assert!(matches!(
        decode_chunk_body(&body, 6),
        Err(CodecError::Truncated { .. })
    ));
}

/// The trailer's frame pointers are validated against the file extent.
#[test]
fn trailer_frame_out_of_bounds_is_rejected() {
    let bytes = sample_trace();
    let n = bytes.len();
    for (name, mutate) in [
        ("offset", 16usize), // index_off field
        ("length", 8),       // index_len field
    ] {
        let mut bad = bytes.clone();
        let at = n - mutate;
        let huge = (n as u64 * 2).to_le_bytes();
        bad[at..at + 8].copy_from_slice(&huge);
        let err = TraceFile::parse(bad).expect_err(&format!("bad index {name}"));
        assert!(
            matches!(err, CodecError::Invalid(_) | CodecError::ChecksumMismatch),
            "bad index {name}: unexpected error {err:?}"
        );
    }
}

/// Empty input and random garbage: the parser's first steps must already
/// be fail-safe.
#[test]
fn garbage_inputs_never_panic() {
    assert!(TraceFile::parse(Vec::new()).is_err());
    assert!(TraceFile::parse(vec![0u8; 7]).is_err());
    assert!(TraceFile::parse(vec![0xFF; 64]).is_err());
    let mut not_quite = b"SMTTRACF".to_vec();
    not_quite.extend_from_slice(&[0u8; 56]);
    assert!(matches!(
        TraceFile::parse(not_quite),
        Err(CodecError::BadMagic)
    ));
}
